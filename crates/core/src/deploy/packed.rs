//! The batched bit-packed deploy engine: XNOR + popcount over `u64`
//! words, fanned across threads.
//!
//! [`PackedModel`] is the word-parallel twin of the scalar digital engine
//! ([`DeployedModel::classify_digital`]): same deterministic semantics —
//! per-tile saturating comparators, majority-vote SC accumulation with
//! ties to '1', dead-column overrides, flip channels, popcount classifier
//! head — but every XNOR-product sum is a masked popcount over packed
//! weight/activation planes instead of a per-element loop, and batches are
//! split across `std::thread::scope` workers. The model is *lowered* into
//! a [`PackedLayer`] pipeline plan (see [`super::pipeline`]): conv cells
//! gather receptive fields with the word-level bitplane im2col, pool cells
//! fold words, dense cells run one tiled evaluation — heterogeneous
//! stacks (CIFAR VGG) and MLPs ride the same substrate. The two engines
//! are differentially tested to be bit-identical on every input; the
//! packed one is an order of magnitude faster (see the
//! `deploy_throughput` / `deploy_conv_throughput` benches).
//!
//! # Packed layout
//!
//! * **Bit order** — little-endian in the flat feature index: activation
//!   `i` of a `[C, H, W]` map (row-major, channel-major like
//!   [`BitMap`]) lives in word `i / 64`, bit `i % 64`; logic '1' = value
//!   `+1`. Weight rows use the same order over the fan-in
//!   (`in_c · k · k`, matching the im2col receptive-field order).
//! * **Padding semantics** — convolution padding contributes '0' bits
//!   (value −1), exactly the software model's −1 padding; tail bits past
//!   `len` are kept zero so whole-plane popcounts need no masking.
//! * **Batch-major stride** — a batch is a [`PackedMatrix`]: one row per
//!   sample, row stride `words_per_row()`. Workers slice the batch by
//!   rows, so each thread streams contiguous words.
//!
//! Crossbar *tiles* are sub-ranges of the fan-in: each tile's partial sum
//! is `2 · popcount(XNOR(w, a) & tile mask) − rows`, evaluated by
//! [`PackedMatrix::xnor_ones_range`] with boundary-word masking, so ragged
//! tiles (fan-in not a multiple of 64, or tiles narrower than a word)
//! are exact. Injected faults carry over from the deployment: stuck LiM
//! cells are baked into the packed weight planes, dead columns override
//! the tile vote.

use super::bitmap::BitMap;
use super::layer::{DeployedCell, TiledMatrix};
use super::model::{argmax, DeployedClassifier, DeployedModel};
use super::pipeline::PackedLayer;
use aqfp_crossbar::faults::{draw_faults_tiled, FaultModel, InjectedFaults, PatchJournal};
use aqfp_device::Bit;
use aqfp_sc::bitplane::lane_counts_w;
use aqfp_sc::{BitPlane, PackedMatrix, Word, V256};
use bnn_nn::Tensor;
use rand::Rng;

/// The packed twin of a [`TiledMatrix`]: weight bitplanes (one row per
/// output channel, faults included), per-tile integer comparator
/// thresholds and dead-column overrides.
///
/// `PartialEq` compares the *complete* packed state — weight planes,
/// tile spans, dead overrides, SWAR lane biases — which is what the
/// journal tests lean on to prove `patch → revert` is bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedTiledMatrix {
    /// `[out × fan_in]` weight bits, reassembled from the tile crossbars.
    weights: PackedMatrix,
    /// Row-tile boundaries over the fan-in (`k + 1` entries).
    row_starts: Vec<usize>,
    /// Column-group boundaries over the output channels (`groups + 1`
    /// entries) — kept so faults drawn per physical die can be mapped back
    /// onto the packed planes.
    col_starts: Vec<usize>,
    /// `[out × k]` channel-major integer thresholds.
    min_sums: Vec<i64>,
    /// `[out × k]` channel-major dead-column overrides
    /// (0 = live, 1 = stuck '0', 2 = stuck '1').
    dead: Vec<u8>,
    /// Per-tile word spans and boundary masks, aligned with the row
    /// tiles: tile `r`'s XNOR matches are the masked popcounts of words
    /// `first..=last` — precomputed once so the per-pixel tile loop does
    /// no index or mask arithmetic.
    spans: Vec<TileSpan>,
    /// SWAR acceleration for uniform power-of-two tile widths.
    swar: Option<Swar>,
    /// `[out × k]` channel-major programmed neuron thresholds in µA — the
    /// *analog* source the digital `min_sums` were quantized from, kept so
    /// the stochastic engine can evaluate finite-gray-zone flip
    /// probabilities (`super::stochastic`).
    thresholds_ua: Vec<f64>,
    /// Gray-zone width `ΔIin` of the neuron buffers at deployment, in µA.
    grayzone_ua: f64,
    /// Current-attenuation model at deployment.
    attenuation: aqfp_crossbar::AttenuationModel,
    /// SC observation window `L`.
    window: usize,
    /// Parallel-counter implementation of the SC accumulation module.
    counter: aqfp_sc::accumulate::CounterKind,
    flips: Vec<bool>,
    fan_in: usize,
    out: usize,
}

/// Widest `Word` the blocked matrix kernel's stack-allocated per-lane
/// vote buffer accommodates ([`V256`] today).
const MAX_LANES: usize = 4;

/// One row tile's precomputed word coverage: bit range
/// `[64·first + lo offset, 64·last + hi offset)` with `lo`/`hi` the valid
/// bit masks of the boundary words (interior words are whole).
#[derive(Debug, Clone, PartialEq, Eq)]
struct TileSpan {
    first: usize,
    last: usize,
    lo: u64,
    hi: u64,
    /// Tile width in bits (`end − start`), cached for the vote compare.
    len: i64,
}

impl TileSpan {
    fn new(start: usize, end: usize) -> Self {
        let first = start / 64;
        let last = (end - 1) / 64;
        let lo = u64::MAX << (start % 64);
        let hi_bits = end % 64;
        let hi = if hi_bits == 0 {
            u64::MAX
        } else {
            (1u64 << hi_bits) - 1
        };
        Self {
            first,
            last,
            lo,
            hi,
            len: (end - start) as i64,
        }
    }

    /// XNOR match count of the tile over `row`/`acts`.
    #[inline]
    fn matches(&self, row: &[u64], acts: &[u64]) -> usize {
        self.matches_with(row, |w| acts[w])
    }

    /// XNOR match count with the activation words read through `act` — the
    /// indirection that lets the lane-generic matrix kernel evaluate tail
    /// tiles on one lane of a transposed wide-word block without copying
    /// it back out to a `u64` slice first.
    #[inline]
    fn matches_with(&self, row: &[u64], act: impl Fn(usize) -> u64) -> usize {
        if self.first == self.last {
            return (!(row[self.first] ^ act(self.first)) & self.lo & self.hi).count_ones()
                as usize;
        }
        let mut m = (!(row[self.first] ^ act(self.first)) & self.lo).count_ones() as usize;
        for (w, &rw) in row.iter().enumerate().take(self.last).skip(self.first + 1) {
            m += (!(rw ^ act(w))).count_ones() as usize;
        }
        m + ((!(row[self.last] ^ act(self.last)) & self.hi).count_ones() as usize)
    }
}

/// SWAR (SIMD-within-a-register) tile evaluation: when every row tile is
/// `lane ∈ {4, 8, 16, 32}` bits wide, one XNOR word holds `64 / lane`
/// complete tiles. A parallel bit-count reduction yields all lane
/// popcounts at once, and adding a per-lane bias of `2^(lane−1) − t`
/// (where `t` is the tile's minimum match count, with dead columns encoded
/// as `t = 0` / `t = lane + 1`) sets each lane's top bit exactly when the
/// tile votes — so a channel's votes over a word are one popcount of the
/// masked top bits. When the tiles are lane-aligned (the planner's normal
/// output) the tables cover every tile — ragged last included, via
/// garbage-folded thresholds (see [`PackedTiledMatrix::build_swar`]) — and
/// `tail_tile` equals the tile count; only misaligned layouts leave tiles
/// on the generic range path.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Swar {
    /// Tile width in bits.
    lane: u32,
    /// Words per row covered by the tables (all of them when aligned).
    words: usize,
    /// First tile index evaluated generically (the tile count when the
    /// tables cover everything).
    tail_tile: usize,
    /// `[tail_tile]` per-tile constant count inflation (`lane − width`,
    /// the garbage-fold amount) — precomputed so per-pixel count readout
    /// ([`PackedTiledMatrix::matches_into`]) doesn't re-derive it from
    /// `row_starts` on every cell.
    slack: Vec<u32>,
    /// Lane top bits (`1 << (lane − 1)` replicated).
    msb_mask: u64,
    /// `[out × words]` per-lane comparator biases.
    bias: Vec<u64>,
}

/// Per-lane popcounts of `x` for the given lane width — the `u64`
/// instantiation of the lane-generic SWAR reduction
/// ([`aqfp_sc::bitplane::lane_counts_w`]), kept as a named alias because
/// the scalar per-plane kernels call it pervasively.
#[inline]
fn lane_counts(x: u64, lane: u32) -> u64 {
    lane_counts_w(x, lane)
}

impl PackedTiledMatrix {
    /// Packs a deployed tiled matrix (reads the crossbars' *stored*
    /// weights, so stuck-cell faults are baked in).
    pub fn from_tiled(m: &TiledMatrix) -> Self {
        let plan = m.plan();
        let k = plan.row_tiles();
        let (fan_in, out) = (m.fan_in(), m.out());
        let mut weights = PackedMatrix::zeros(out, fan_in);
        let mut min_sums = vec![0i64; out * k];
        let mut thresholds_ua = vec![0f64; out * k];
        let mut dead = vec![0u8; out * k];
        let xbars = m.tile_crossbars();
        let mins = m.digital_min_sums();
        #[allow(clippy::needless_range_loop)] // c indexes tile cols and mins
        for (idx, t) in plan.tiles.iter().enumerate() {
            let r = idx % k;
            for c in 0..t.cols {
                let channel = t.col_start + c;
                for row in 0..t.rows {
                    if xbars[idx].weight(row, c).as_bool() {
                        weights.set(channel, t.row_start + row, true);
                    }
                }
                min_sums[channel * k + r] = mins[idx][c];
                thresholds_ua[channel * k + r] = xbars[idx].thresholds_ua()[c];
                if let Some(&b) = m.dead_outputs().get(&(idx, c)) {
                    dead[channel * k + r] = if b.as_bool() { 2 } else { 1 };
                }
            }
        }
        let config = *xbars[0].config();
        let mut row_starts: Vec<usize> = plan.tiles[..k].iter().map(|t| t.row_start).collect();
        row_starts.push(fan_in);
        // Plan tiles are emitted column-major (all row tiles of one column
        // group consecutively), so every k-th tile starts a new group.
        let mut col_starts: Vec<usize> =
            plan.tiles.iter().step_by(k).map(|t| t.col_start).collect();
        col_starts.push(out);
        let spans = (0..k)
            .map(|r| TileSpan::new(row_starts[r], row_starts[r + 1]))
            .collect();
        let swar = Self::build_swar(&row_starts, &min_sums, &dead, out, fan_in);
        Self {
            weights,
            row_starts,
            col_starts,
            min_sums,
            dead,
            spans,
            swar,
            thresholds_ua,
            grayzone_ua: config.grayzone_ua,
            attenuation: config.attenuation,
            window: m.window(),
            counter: m.counter(),
            flips: m.flips().to_vec(),
            fan_in,
            out,
        }
    }

    /// Precomputes the SWAR tables when the tile geometry allows them.
    ///
    /// When every tile starts at a multiple of the lane width and is at
    /// most one lane wide — which [`TilingPlan`](super::layer) guarantees:
    /// all tiles are full `crossbar_rows` chunks except a ragged last —
    /// the tables cover **every** tile, ragged last included, and the
    /// per-pixel kernels have no scalar tail at all. The trick is that
    /// bits past a tile's width (ragged-tile slack and bits past `fan_in`)
    /// XNOR to a *constant* '1' — weight rows and activation planes both
    /// keep their tails zero (the bitplane layout invariant) — so each
    /// field's count is inflated by a fixed `garbage` amount that folds
    /// straight into the comparator threshold. Fields past the last tile
    /// get a never-vote threshold the same way.
    fn build_swar(
        row_starts: &[usize],
        min_sums: &[i64],
        dead: &[u8],
        out: usize,
        fan_in: usize,
    ) -> Option<Swar> {
        let k = row_starts.len() - 1;
        // Round the leading tile width up to a supported lane: a single
        // narrow tile (fan_in below the crossbar row count, e.g. a first
        // conv layer's 27-bit receptive field) rides the wider datapath
        // with its slack garbage-folded like any ragged tile. Multi-tile
        // layouts only align when the width is already a power of two.
        let lane = (row_starts[1] - row_starts[0]).next_power_of_two().max(4);
        if lane > 32 {
            return None;
        }
        let aligned =
            (0..k).all(|r| row_starts[r] == r * lane && row_starts[r + 1] - row_starts[r] <= lane);
        // Words covered by the tables: all of them when aligned (the
        // common case), else the whole-word uniform prefix with the rest
        // falling back to the generic span path.
        let (words, tail_tile) = if aligned {
            (fan_in.div_ceil(64), k)
        } else {
            let uniform = (0..k)
                .take_while(|&r| row_starts[r + 1] - row_starts[r] == lane)
                .count();
            let words = uniform * lane / 64;
            (words, words * (64 / lane))
        };
        if words == 0 {
            return None;
        }
        let lanes_per_word = 64 / lane;
        let msb = 1u64 << (lane - 1);
        let mut msb_mask = 0u64;
        for j in 0..lanes_per_word {
            msb_mask |= msb << (j * lane);
        }
        let mut bias = vec![0u64; out * words];
        for channel in 0..out {
            for i in 0..words {
                for j in 0..lanes_per_word {
                    let r = i * lanes_per_word + j;
                    let t = if r < tail_tile {
                        // Tile width and constant count inflation of this
                        // field (0 for full tiles in the uniform prefix).
                        let width = (row_starts[r + 1] - row_starts[r]) as i64;
                        let garbage = lane as i64 - width;
                        // Minimum XNOR match count for a vote: tile bit =
                        // '1' iff `2·matches − width ≥ min_sum`, i.e.
                        // `matches ≥ ⌈(min_sum + width) / 2⌉`; dead columns
                        // pin the vote via t = 0 (stuck '1') /
                        // width + 1 (stuck '0'); `garbage` shifts every
                        // threshold by the field's constant inflation.
                        garbage
                            + match dead[channel * k + r] {
                                1 => width + 1,
                                2 => 0,
                                _ => (min_sums[channel * k + r] + width + 1)
                                    .div_euclid(2)
                                    .clamp(0, width + 1),
                            }
                    } else {
                        // Field past the last tile: every bit is tail
                        // slack counting '1', so `lane + 1` never votes.
                        lane as i64 + 1
                    } as u64;
                    bias[channel * words + i] |= (msb - t) << (j * lane);
                }
            }
        }
        let slack = (0..tail_tile)
            .map(|r| lane as u32 - (row_starts[r + 1] - row_starts[r]) as u32)
            .collect();
        Some(Swar {
            lane: lane as u32,
            words,
            tail_tile,
            msb_mask,
            slack,
            bias,
        })
    }

    /// The primitive (serializable) state of the matrix — everything the
    /// snapshot codec persists. The derived acceleration state (tile
    /// spans, SWAR tables) is *not* part of it; [`Self::from_parts`]
    /// rebuilds it, which is faithful even for faulted matrices because
    /// fault injection keeps `dead` and the SWAR biases mutually
    /// consistent ([`Self::set_dead`] patches both from the same rule
    /// [`Self::build_swar`] applies).
    pub(crate) fn to_parts(&self) -> MatrixParts {
        MatrixParts {
            weights: self.weights.clone(),
            row_starts: self.row_starts.clone(),
            col_starts: self.col_starts.clone(),
            min_sums: self.min_sums.clone(),
            dead: self.dead.clone(),
            thresholds_ua: self.thresholds_ua.clone(),
            grayzone_ua: self.grayzone_ua,
            attenuation: self.attenuation,
            window: self.window,
            counter: self.counter,
            flips: self.flips.clone(),
            fan_in: self.fan_in,
            out: self.out,
        }
    }

    /// Reassembles a matrix from decoded snapshot parts, rebuilding the
    /// derived tile spans and SWAR tables. The snapshot codec validates
    /// the parts' internal consistency (monotone tile boundaries, table
    /// lengths, zero weight tails) before calling this.
    pub(crate) fn from_parts(p: MatrixParts) -> Self {
        let k = p.row_starts.len() - 1;
        let spans = (0..k)
            .map(|r| TileSpan::new(p.row_starts[r], p.row_starts[r + 1]))
            .collect();
        let swar = Self::build_swar(&p.row_starts, &p.min_sums, &p.dead, p.out, p.fan_in);
        Self {
            weights: p.weights,
            row_starts: p.row_starts,
            col_starts: p.col_starts,
            min_sums: p.min_sums,
            dead: p.dead,
            spans,
            swar,
            thresholds_ua: p.thresholds_ua,
            grayzone_ua: p.grayzone_ua,
            attenuation: p.attenuation,
            window: p.window,
            counter: p.counter,
            flips: p.flips,
            fan_in: p.fan_in,
            out: p.out,
        }
    }

    /// Fan-in of the matrix.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Output channels.
    pub fn out(&self) -> usize {
        self.out
    }

    /// Number of row tiles `k` (crossbars accumulated per output channel).
    pub fn row_tiles(&self) -> usize {
        self.row_starts.len() - 1
    }

    /// The fan-in rows merged by row tile `r` (the `Cs` of the
    /// attenuation law for that die).
    pub fn tile_rows(&self, r: usize) -> usize {
        self.row_starts[r + 1] - self.row_starts[r]
    }

    /// Column-group boundaries over the output channels (`groups + 1`
    /// ascending entries, last = `out()`) — the deployment-plan grouping
    /// the scalar engine walks, exposed so the stochastic engine can
    /// consume the RNG in the identical (group, tile, column) order.
    pub fn col_group_starts(&self) -> &[usize] {
        &self.col_starts
    }

    /// The SC observation window `L` of the stochastic datapath.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The parallel-counter implementation of the SC accumulation module.
    pub fn counter(&self) -> aqfp_sc::accumulate::CounterKind {
        self.counter
    }

    /// The programmed neuron threshold of `channel` at row tile `r`, µA.
    pub fn threshold_ua(&self, channel: usize, r: usize) -> f64 {
        self.thresholds_ua[channel * self.row_tiles() + r]
    }

    /// Gray-zone width `ΔIin` the matrix was deployed with, in µA.
    pub fn grayzone_ua(&self) -> f64 {
        self.grayzone_ua
    }

    /// The current-attenuation model the matrix was deployed with.
    pub fn attenuation(&self) -> &aqfp_crossbar::AttenuationModel {
        &self.attenuation
    }

    /// Per-channel output-inversion flags (γ < 0 channels).
    pub fn flips(&self) -> &[bool] {
        &self.flips
    }

    /// The raw `[out × k]` dead-column state (0 live, 1 stuck '0', 2 stuck
    /// '1') — the bulk form of [`Self::dead_override`] for kernels that
    /// walk every cell and want the branch decided from one slice load.
    pub(crate) fn dead_cells(&self) -> &[u8] {
        &self.dead
    }

    /// The dead-column override of `channel` at row tile `r`, if that
    /// die's neuron is stuck.
    pub fn dead_override(&self, channel: usize, r: usize) -> Option<Bit> {
        match self.dead[channel * self.row_tiles() + r] {
            1 => Some(Bit::Zero),
            2 => Some(Bit::One),
            _ => None,
        }
    }

    /// Row-tile boundaries over the fan-in (`row_tiles() + 1` ascending
    /// entries, last = `fan_in()`) — the row twin of
    /// [`Self::col_group_starts`], exposed so the verification subsystem
    /// can map a die index to global `(row, channel)` coordinates.
    pub fn row_tile_starts(&self) -> &[usize] {
        &self.row_starts
    }

    /// The quantized integer comparator reference of `channel` at row
    /// tile `r`: the tile votes '1' iff its signed XNOR sum is
    /// `≥ min_sum`. Read-only access for per-tile counterexample
    /// localization (the decision kernels read the same table).
    pub fn min_sum(&self, channel: usize, r: usize) -> i64 {
        self.min_sums[channel * self.row_tiles() + r]
    }

    /// The currently stored weight bit of `channel` at fan-in position
    /// `bit` ('1' = +1) — faults included, since stuck cells overwrite
    /// the packed planes. The screening loop reads this to classify a
    /// stuck-at polarity as benign (equal to the stored weight) or
    /// malignant.
    pub fn weight_bit(&self, channel: usize, bit: usize) -> bool {
        self.weights.get(channel, bit)
    }

    /// Writes every channel's per-row-tile XNOR match count for one packed
    /// activation word slice into `out` (channel-major `[out × k]`,
    /// `matches ∈ 0..=tile_rows(r)`; the tile's signed partial sum is
    /// `2·matches − tile_rows(r)`).
    ///
    /// This is the counting stage of the stochastic engine: where the
    /// digital vote kernel ([`Self::forward_plane`]) only needs the
    /// *threshold* bit of each SWAR lane, the stochastic datapath needs
    /// the full per-tile sums (they set the gray-zone flip probability),
    /// so the same `lane_counts` reduction is read out lane-by-lane
    /// instead of being bias-compared.
    ///
    /// # Panics
    /// Panics if `out.len() != out() · row_tiles()` or the activation
    /// slice is shorter than the weight rows.
    pub fn matches_into(&self, acts: &[u64], out: &mut [u32]) {
        let k = self.spans.len();
        assert_eq!(out.len(), self.out * k, "match buffer shape mismatch");
        for channel in 0..self.out {
            let row = self.weights.row_words(channel);
            let dst = &mut out[channel * k..(channel + 1) * k];
            let mut tail = 0usize;
            if let Some(sw) = &self.swar {
                // `slack` has exactly `tail_tile` entries, so zipping the
                // destination against it both applies the garbage fold and
                // terminates the readout at the last covered tile —
                // fields past it (full-coverage tables round rows up to
                // whole words) are never visited. Bits past a tile's
                // width XNOR-match constantly (both planes keep zeroed
                // tails), so each raw field count is inflated by exactly
                // the slack width.
                let mut cells = dst.iter_mut().zip(&sw.slack);
                if sw.lane == 32 {
                    // Half-word tiles resolve with two hardware popcounts,
                    // skipping the SWAR reduction pyramid entirely — the
                    // 32×32-crossbar operating point, so this is the hot
                    // shape of the robustness engine.
                    'half: for (&rw, &aw) in row.iter().zip(acts).take(sw.words) {
                        let z = !(rw ^ aw);
                        for half in [z & 0xFFFF_FFFF, z >> 32] {
                            let Some((slot, &slack)) = cells.next() else {
                                break 'half;
                            };
                            *slot = half.count_ones() - slack;
                        }
                    }
                } else {
                    let lanes_per_word = (64 / sw.lane) as usize;
                    let lane_mask = (1u64 << sw.lane) - 1;
                    'words: for (&rw, &aw) in row.iter().zip(acts).take(sw.words) {
                        let counts = lane_counts(!(rw ^ aw), sw.lane);
                        for j in 0..lanes_per_word as u32 {
                            let Some((slot, &slack)) = cells.next() else {
                                break 'words;
                            };
                            *slot = ((counts >> (j * sw.lane)) & lane_mask) as u32 - slack;
                        }
                    }
                }
                tail = sw.tail_tile;
            }
            for (r, slot) in dst.iter_mut().enumerate().skip(tail) {
                *slot = self.spans[r].matches(row, acts) as u32;
            }
        }
    }

    /// The `(rows, cols)` of every physical crossbar die behind this
    /// packed matrix, in deployment plan order (column groups outer, row
    /// tiles inner). This is the geometry
    /// [`aqfp_crossbar::faults::draw_faults_tiled`] needs so a packed
    /// fault campaign consumes the RNG exactly like the scalar
    /// [`TiledMatrix::inject_faults`] walking its crossbars.
    pub fn tile_dims(&self) -> Vec<(usize, usize)> {
        let k = self.row_starts.len() - 1;
        let groups = self.col_starts.len() - 1;
        let mut dims = Vec::with_capacity(groups * k);
        for g in 0..groups {
            let cols = self.col_starts[g + 1] - self.col_starts[g];
            for r in 0..k {
                dims.push((self.row_starts[r + 1] - self.row_starts[r], cols));
            }
        }
        dims
    }

    /// Applies pre-drawn fabrication faults directly to the packed state —
    /// the word-level twin of
    /// [`apply_stuck_cells`](aqfp_crossbar::faults::apply_stuck_cells) plus
    /// dead-column registration, with the same semantics as re-lowering a
    /// faulted [`TiledMatrix`]:
    ///
    /// * stuck LiM cells overwrite weight bits, applied as per-word
    ///   clear/set masks on the packed planes
    ///   ([`PackedMatrix::apply_row_mask`]) instead of per-bit writes;
    /// * dead columns pin their tile's vote, folded into the SWAR lane
    ///   biases in place where the tile geometry uses them.
    ///
    /// `faults` must be aligned with [`Self::tile_dims`] (one entry per
    /// die, plan order); out-of-range cells within an entry are ignored,
    /// matching the scalar applier. An **empty** slice is an explicit
    /// no-op (a filtered-out draw), not a shape error.
    ///
    /// # Panics
    /// Panics if `faults` is non-empty and its length does not match the
    /// tile count.
    pub fn apply_faults(&mut self, faults: &[InjectedFaults]) {
        self.apply_faults_inner(faults, 0, None);
    }

    /// [`Self::apply_faults`] with an undo journal: every weight word and
    /// dead-column pin is recorded with its prior value (tagged with
    /// `layer`, the caller's pipeline-stage index) **before** being
    /// overwritten, so the caller can later restore the matrix bit-for-bit
    /// via the recorded entries in reverse order (see
    /// [`PackedModel::revert_faults`]). The applied state is identical to
    /// the unjournaled path; an empty slice is a no-op that records
    /// nothing.
    ///
    /// # Panics
    /// Panics if `faults` is non-empty and its length does not match the
    /// tile count.
    pub fn apply_faults_journaled(
        &mut self,
        faults: &[InjectedFaults],
        layer: usize,
        journal: &mut PatchJournal,
    ) {
        self.apply_faults_inner(faults, layer, Some(journal));
    }

    fn apply_faults_inner(
        &mut self,
        faults: &[InjectedFaults],
        layer: usize,
        mut journal: Option<&mut PatchJournal>,
    ) {
        // An empty draw is an explicit no-op, not a shape error: a
        // campaign that filters its draw list (or a pristine fault model
        // short-circuiting before the per-die walk) must leave the matrix
        // and the journal untouched, so the paired `revert_faults` is a
        // no-op too.
        if faults.is_empty() {
            return;
        }
        let k = self.row_starts.len() - 1;
        assert_eq!(
            faults.len(),
            (self.col_starts.len() - 1) * k,
            "fault draw / tile count mismatch"
        );
        for (idx, f) in faults.iter().enumerate() {
            let (g, r) = (idx / k, idx % k);
            let row_start = self.row_starts[r];
            let rows = self.row_starts[r + 1] - row_start;
            let col_start = self.col_starts[g];
            let cols = self.col_starts[g + 1] - col_start;
            if !f.stuck_cells.is_empty() {
                // Fold this die's stuck cells into one clear/set mask pair
                // per (channel, covered word) and apply them wholesale.
                let first = row_start / 64;
                let span = (row_start + rows - 1) / 64 - first + 1;
                let mut masks = vec![(0u64, 0u64); cols * span];
                for &(row, col, v) in &f.stuck_cells {
                    if row >= rows || col >= cols {
                        continue;
                    }
                    let bit = row_start + row;
                    let m = &mut masks[col * span + (bit / 64 - first)];
                    m.0 |= 1 << (bit % 64);
                    if v.as_bool() {
                        m.1 |= 1 << (bit % 64);
                    }
                }
                for c in 0..cols {
                    for w in 0..span {
                        let (clear, set) = masks[c * span + w];
                        if clear != 0 {
                            if let Some(j) = journal.as_deref_mut() {
                                j.record_word(
                                    layer,
                                    col_start + c,
                                    first + w,
                                    self.weights.row_words(col_start + c)[first + w],
                                );
                            }
                            self.weights
                                .apply_row_mask(col_start + c, first + w, clear, set);
                        }
                    }
                }
            }
            for &(col, b) in &f.dead_columns {
                if col < cols {
                    self.set_dead(col_start + col, r, b, layer, journal.as_deref_mut());
                }
            }
        }
    }

    /// Restores one journaled weight word (see
    /// [`PackedModel::revert_faults`] for the reverse-order contract).
    pub(crate) fn restore_word(&mut self, channel: usize, word: usize, prior: u64) {
        self.weights.row_words_mut(channel)[word] = prior;
    }

    /// Restores one journaled dead-column pin: the dead-override byte,
    /// and — where the tile runs on SWAR tables — the folded bias word its
    /// lane lives in.
    pub(crate) fn restore_pin(&mut self, channel: usize, tile: usize, dead: u8, bias: Option<u64>) {
        let k = self.row_starts.len() - 1;
        self.dead[channel * k + tile] = dead;
        if let Some(prior) = bias {
            let sw = self
                .swar
                .as_mut()
                .expect("a journaled bias word implies SWAR tables");
            let lanes_per_word = (64 / sw.lane) as usize;
            sw.bias[channel * sw.words + tile / lanes_per_word] = prior;
        }
    }

    /// Pins one channel's row-tile vote to a fabrication constant: updates
    /// the dead-override table and patches the affected SWAR bias lane in
    /// place (dead columns are encoded as comparator thresholds `t = 0`
    /// for stuck '1' / `t = lane + 1` for stuck '0'; see
    /// [`Self::build_swar`]).
    fn set_dead(
        &mut self,
        channel: usize,
        r: usize,
        stuck: Bit,
        layer: usize,
        journal: Option<&mut PatchJournal>,
    ) {
        let k = self.row_starts.len() - 1;
        if let Some(j) = journal {
            // SWAR tiles record the whole bias word their lane lives in;
            // overlapping pins restore correctly because reverts run in
            // reverse record order.
            let prior_bias = self.swar.as_ref().and_then(|sw| {
                (r < sw.tail_tile)
                    .then(|| sw.bias[channel * sw.words + r / (64 / sw.lane) as usize])
            });
            j.record_pin(layer, channel, r, self.dead[channel * k + r], prior_bias);
        }
        self.dead[channel * k + r] = if stuck.as_bool() { 2 } else { 1 };
        let width = (self.row_starts[r + 1] - self.row_starts[r]) as u64;
        if let Some(sw) = &mut self.swar {
            if r < sw.tail_tile {
                let lanes_per_word = (64 / sw.lane) as usize;
                let (i, j) = (r / lanes_per_word, r % lanes_per_word);
                let shift = (j as u32) * sw.lane;
                let msb = 1u64 << (sw.lane - 1);
                // Same garbage fold as `build_swar`: slack bits past the
                // tile's width count '1' constantly, shifting the pin
                // thresholds by `lane − width`.
                let garbage = sw.lane as u64 - width;
                let t = garbage + if stuck.as_bool() { 0 } else { width + 1 };
                let lane_mask = ((1u64 << sw.lane) - 1) << shift;
                let word = &mut sw.bias[channel * sw.words + i];
                *word = (*word & !lane_mask) | ((msb - t) << shift);
            }
        }
    }

    /// Per-channel loop-invariant state hoisted out of per-pixel inner
    /// loops: the weight row, SWAR bias slice, and the channel's slices of
    /// the tile threshold/override tables.
    #[inline]
    fn channel_ctx(&self, channel: usize) -> ChannelCtx<'_> {
        let k = self.row_starts.len() - 1;
        let base = channel * k;
        ChannelCtx {
            row: self.weights.row_words(channel),
            bias: self
                .swar
                .as_ref()
                .map(|sw| &sw.bias[channel * sw.words..(channel + 1) * sw.words]),
            min_sums: &self.min_sums[base..base + k],
            dead: &self.dead[base..base + k],
            flip: self.flips[channel],
        }
    }

    /// The output bit of one channel for one activation word slice: SWAR
    /// lane votes over the uniform tile prefix (the XNOR word is formed on
    /// the fly — no scratch buffer), precomputed-span masked popcounts for
    /// the tail tiles, majority vote with ties to '1', dead-column
    /// overrides, flip. The one decision kernel both
    /// [`Self::forward_plane`] and [`Self::forward_matrix`] evaluate
    /// through.
    #[inline]
    fn channel_bit(&self, ctx: &ChannelCtx<'_>, acts: &[u64]) -> bool {
        let k = self.spans.len();
        let mut votes = 0usize;
        let mut tail = 0usize;
        if let (Some(sw), Some(bias)) = (&self.swar, ctx.bias) {
            for i in 0..sw.words {
                let x = !(ctx.row[i] ^ acts[i]);
                votes += ((lane_counts(x, sw.lane) + bias[i]) & sw.msb_mask).count_ones() as usize;
            }
            tail = sw.tail_tile;
        }
        for r in tail..k {
            let vote = match ctx.dead[r] {
                1 => false,
                2 => true,
                _ => {
                    let sp = &self.spans[r];
                    2 * sp.matches(ctx.row, acts) as i64 - sp.len >= ctx.min_sums[r]
                }
            };
            votes += vote as usize;
        }
        (2 * votes >= k) != ctx.flip
    }

    /// The output bit of **one** channel for one packed activation word
    /// slice — the column-granular kernel of the event-driven delta
    /// engine ([`super::delta`]). Evaluates exactly the decision rule of
    /// [`Self::forward_plane`] (SWAR lane votes, tail-tile masked
    /// popcounts, majority vote with ties to '1', dead overrides, flip)
    /// restricted to `channel`, so recomputing a faulted channel and
    /// splicing it over a cached clean output is bit-identical to a full
    /// re-evaluation: a structural fault on a die perturbs only the
    /// channels of its column group, never a neighbor's votes.
    ///
    /// # Panics
    /// Panics if `channel >= out()` or `acts` is shorter than the weight
    /// rows.
    #[inline]
    pub fn forward_channel(&self, channel: usize, acts: &[u64]) -> bool {
        self.channel_eval(channel).bit(acts)
    }

    /// A hoisted single-channel evaluator: the per-channel weight row,
    /// SWAR biases, thresholds, dead overrides, and flip resolved
    /// **once**, so a caller voting one channel across a whole sample
    /// batch (the event-driven delta engine re-voting a fault cone over
    /// every cached activation, or a conv channel over every output
    /// pixel) pays the context lookup per channel instead of per call.
    ///
    /// # Panics
    /// Panics if `channel >= out()`.
    #[inline]
    pub fn channel_eval(&self, channel: usize) -> ChannelEval<'_> {
        ChannelEval {
            matrix: self,
            ctx: self.channel_ctx(channel),
        }
    }

    /// The output channels a per-die fault draw vector can perturb:
    /// sorted, deduplicated global channel indices — the *fault cone
    /// roots* of the delta engine. A stuck cell or dead column on die
    /// `g·k + r` touches only channel `col_starts[g] + col`; draws that
    /// the applier would ignore (out-of-range die-local coordinates) are
    /// skipped here too, so the dirty set never overstates the cone. An
    /// empty slice (the explicit no-op draw) yields an empty set.
    ///
    /// # Panics
    /// Panics if `faults` is non-empty and its length does not match the
    /// tile count (same contract as [`Self::apply_faults`]).
    pub fn fault_channels(&self, faults: &[InjectedFaults]) -> Vec<usize> {
        if faults.is_empty() {
            return Vec::new();
        }
        let k = self.row_starts.len() - 1;
        assert_eq!(
            faults.len(),
            (self.col_starts.len() - 1) * k,
            "fault draw / tile count mismatch"
        );
        let mut channels = Vec::new();
        for (idx, f) in faults.iter().enumerate() {
            let (g, r) = (idx / k, idx % k);
            let rows = self.row_starts[r + 1] - self.row_starts[r];
            let col_start = self.col_starts[g];
            let cols = self.col_starts[g + 1] - col_start;
            for &(row, col, _) in &f.stuck_cells {
                if row < rows && col < cols {
                    channels.push(col_start + col);
                }
            }
            for &(col, _) in &f.dead_columns {
                if col < cols {
                    channels.push(col_start + col);
                }
            }
        }
        channels.sort_unstable();
        channels.dedup();
        channels
    }

    /// Reverts every patch of `journal` recorded against **this** matrix
    /// (in reverse record order — the overlapping-patch contract of
    /// [`PackedModel::revert_faults`]), then clears the journal. The
    /// matrix-level twin for callers that patch a bare
    /// [`PackedTiledMatrix`] rather than a whole pipeline (the die-level
    /// equivalence checker); the journal's `layer` tags are ignored, so
    /// only use it with journals recorded through this matrix's own
    /// [`Self::apply_faults_journaled`] calls.
    pub fn revert_faults(&mut self, journal: &mut PatchJournal) {
        for p in journal.pins().iter().rev() {
            self.restore_pin(p.channel, p.tile, p.prior_dead, p.prior_bias);
        }
        for w in journal.words().iter().rev() {
            self.restore_word(w.channel, w.word, w.prior);
        }
        journal.clear();
    }

    /// Evaluates all output channels for one packed activation plane —
    /// the word-parallel counterpart of [`TiledMatrix::forward_digital`].
    ///
    /// Per channel the XNOR product is formed word-by-word inside the
    /// vote kernel; each tile's partial sum is a masked popcount of its
    /// bit range, so the cost per channel is `O(words + tiles)` instead of
    /// `O(fan_in)`.
    ///
    /// # Panics
    /// Panics if `act.len() != fan_in`.
    pub fn forward_plane(&self, act: &BitPlane) -> BitPlane {
        assert_eq!(act.len(), self.fan_in, "input length mismatch");
        let mut out = BitPlane::zeros(self.out);
        let acts = act.words();
        for channel in 0..self.out {
            if self.channel_bit(&self.channel_ctx(channel), acts) {
                out.set(channel, true);
            }
        }
        out
    }

    /// Evaluates all output channels for *every row* of a packed
    /// activation matrix — the batched kernel of the packed conv stage,
    /// where the rows are the im2col receptive fields of all output
    /// pixels. Returns a `[out × acts.rows()]` matrix whose row `ch` holds
    /// channel `ch`'s bit per activation row; output bits are assembled as
    /// whole `u64` words, never set one at a time.
    ///
    /// Runs the lane-generic blocked kernel at [`V256`] width (four
    /// activation rows per machine word); see [`Self::forward_matrix_as`]
    /// for the kernel structure and the width-generic entry point.
    ///
    /// # Panics
    /// Panics if `acts.width() != fan_in`.
    pub fn forward_matrix(&self, acts: &PackedMatrix) -> PackedMatrix {
        self.forward_matrix_as::<V256>(acts)
    }

    /// The width-generic blocked matrix kernel behind
    /// [`Self::forward_matrix`], exposed so the differential tests and
    /// kernel benches can pin the lane count (`u64` = the scalar
    /// reference, [`V256`] = the wide datapath; both are bit-identical by
    /// construction and by proptest).
    ///
    /// Structure — cache-blocked, activation-stationary:
    ///
    /// * The activation rows are walked in **64-row blocks** (one output
    ///   word per channel per block). Each block is transposed once into
    ///   word-major wide words: wide word `s·words + w` holds activation
    ///   word `w` of rows `64·blk + s·LANES ..`, one row per lane. The
    ///   transposed block (`words × 64` words ≈ a few KiB for every
    ///   deployed geometry) stays L1-resident while **all** output
    ///   channels consume it — where the per-row kernel re-streamed the
    ///   whole im2col matrix once per channel, this streams it once per
    ///   block.
    /// * Per (channel, wide word): one splatted-weight XNOR, the
    ///   lane-generic SWAR reduction ([`lane_counts_w`]), a per-lane bias
    ///   add and MSB mask — `LANES` activation rows per operation. Vote
    ///   bits are shifted to their SWAR field base and accumulated
    ///   *vertically* in a wide accumulator, folded horizontally once per
    ///   sub-block (with a mid-loop fold only where the field width could
    ///   overflow), so the per-word work has no lane extractions.
    /// * Tail tiles (ragged last tile, bits past the SWAR words) use the
    ///   precomputed span popcounts per lane, reading the transposed
    ///   block in place.
    ///
    /// # Panics
    /// Panics if `acts.width() != fan_in`.
    pub fn forward_matrix_as<W: Word>(&self, acts: &PackedMatrix) -> PackedMatrix {
        assert_eq!(acts.width(), self.fan_in, "input width mismatch");
        let n = acts.rows();
        let words = acts.words_per_row();
        let mut out = PackedMatrix::zeros(self.out, n);
        if n == 0 || words == 0 {
            return out;
        }
        let k = self.spans.len();
        let lanes = W::LANES;
        assert!(
            64 % lanes == 0 && lanes <= MAX_LANES,
            "lane count must divide the output block and fit the vote buffer"
        );
        let subs = 64 / lanes;
        let storage = acts.storage();
        let ctxs: Vec<ChannelCtx<'_>> = (0..self.out).map(|c| self.channel_ctx(c)).collect();
        let sw = self.swar.as_ref();
        // Words the vertical vote accumulator can absorb before a SWAR
        // field (width `lane`, one vote bit per word) could overflow.
        let flush_every = sw.map_or(usize::MAX, |sw| {
            if sw.lane >= 32 {
                usize::MAX
            } else {
                (1usize << sw.lane) - 1
            }
        });
        let mut tbuf: Vec<W> = vec![W::zero(); subs * words];
        for blk in 0..n.div_ceil(64) {
            let base = blk * 64;
            let bcount = (n - base).min(64);
            // Transpose the block: lane l of tbuf[s·words + w] = word w of
            // activation row base + s·LANES + l (absent rows stay zero and
            // are never read back).
            tbuf.fill(W::zero());
            for p in 0..bcount {
                let row = &storage[(base + p) * words..(base + p + 1) * words];
                let (s, l) = (p / lanes, p % lanes);
                for (w, &word) in row.iter().enumerate() {
                    tbuf[s * words + w].set_lane(l, word);
                }
            }
            for (channel, ctx) in ctxs.iter().enumerate() {
                let mut cur = 0u64;
                // Channel-invariant SWAR state, hoisted out of the
                // sub-block loop: bias slice zipped with the weight words,
                // broadcast MSB mask, vote-bit downshift.
                let swar = match (sw, ctx.bias) {
                    (Some(sw), Some(bias)) => Some((sw, bias)),
                    _ => None,
                };
                let tail = swar.map_or(0, |(sw, _)| sw.tail_tile);
                for s in 0..bcount.div_ceil(lanes) {
                    let block = &tbuf[s * words..s * words + words];
                    let in_s = lanes.min(bcount - s * lanes);
                    // Per-lane votes of the uniform SWAR tiles, accumulated
                    // vertically at field bases.
                    let mut votes = [0usize; MAX_LANES];
                    if let Some((sw, bias)) = swar {
                        let msb = W::splat(sw.msb_mask);
                        let down = sw.lane - 1;
                        if sw.words < flush_every {
                            // Common case: the whole row fits one vertical
                            // accumulator without field overflow.
                            let mut acc = W::zero();
                            for ((&w, &b), &a) in ctx.row.iter().zip(bias).zip(&block[..sw.words]) {
                                let x = W::splat(w).xnor(a);
                                acc = acc.add64(
                                    lane_counts_w(x, sw.lane)
                                        .add64(W::splat(b))
                                        .and(msb)
                                        .shr(down),
                                );
                            }
                            Self::fold_votes(&acc, sw.lane, in_s, &mut votes);
                        } else {
                            let mut acc = W::zero();
                            let mut pending = 0usize;
                            for i in 0..sw.words {
                                let x = W::splat(ctx.row[i]).xnor(block[i]);
                                let hit =
                                    lane_counts_w(x, sw.lane).add64(W::splat(bias[i])).and(msb);
                                acc = acc.add64(hit.shr(down));
                                pending += 1;
                                if pending == flush_every {
                                    Self::fold_votes(&acc, sw.lane, in_s, &mut votes);
                                    acc = W::zero();
                                    pending = 0;
                                }
                            }
                            if pending > 0 {
                                Self::fold_votes(&acc, sw.lane, in_s, &mut votes);
                            }
                        }
                    }
                    for (l, votes) in votes.iter_mut().enumerate().take(in_s) {
                        for (r, sp) in self.spans.iter().enumerate().skip(tail) {
                            let vote = match ctx.dead[r] {
                                1 => false,
                                2 => true,
                                _ => {
                                    2 * sp.matches_with(ctx.row, |w| block[w].lane(l)) as i64
                                        - sp.len
                                        >= ctx.min_sums[r]
                                }
                            };
                            *votes += vote as usize;
                        }
                        let bit = (2 * *votes >= k) != ctx.flip;
                        cur |= (bit as u64) << (s * lanes + l);
                    }
                }
                out.row_words_mut(channel)[blk] = cur;
            }
        }
        out
    }

    /// Folds one vertical vote accumulator into per-lane totals: each
    /// 64-bit lane of `acc` holds SWAR fields of width `lane` counting the
    /// votes of the tiles at that field position; the horizontal field sum
    /// is lane `l`'s vote count, added into `votes[l]`.
    #[inline]
    fn fold_votes<W: Word>(acc: &W, lane: u32, in_s: usize, votes: &mut [usize; MAX_LANES]) {
        let field_mask = if lane == 32 {
            // `lane_counts_w` leaves 32-bit-lane counts in 16-bit
            // sub-fields, but vote bits were masked to the field MSB and
            // shifted to the base, so the full field mask is correct here.
            0xffff_ffffu64
        } else {
            (1u64 << lane) - 1
        };
        let fields = (64 / lane) as usize;
        for (l, votes) in votes.iter_mut().enumerate().take(in_s) {
            let v = acc.lane(l);
            let mut sum = 0u64;
            for j in 0..fields {
                sum += (v >> (j as u32 * lane)) & field_mask;
            }
            *votes += sum as usize;
        }
    }
}

/// The primitive state of a [`PackedTiledMatrix`], as persisted by the
/// snapshot codec (see [`super::snapshot`] for the wire format). Derived
/// state (tile spans, SWAR tables) is rebuilt on reassembly.
#[derive(Debug, Clone)]
pub(crate) struct MatrixParts {
    pub(crate) weights: PackedMatrix,
    pub(crate) row_starts: Vec<usize>,
    pub(crate) col_starts: Vec<usize>,
    pub(crate) min_sums: Vec<i64>,
    pub(crate) dead: Vec<u8>,
    pub(crate) thresholds_ua: Vec<f64>,
    pub(crate) grayzone_ua: f64,
    pub(crate) attenuation: aqfp_crossbar::AttenuationModel,
    pub(crate) window: usize,
    pub(crate) counter: aqfp_sc::accumulate::CounterKind,
    pub(crate) flips: Vec<bool>,
    pub(crate) fan_in: usize,
    pub(crate) out: usize,
}

/// Loop-invariant per-channel slices of a [`PackedTiledMatrix`] (see
/// [`PackedTiledMatrix::channel_ctx`]).
#[derive(Clone, Copy)]
struct ChannelCtx<'a> {
    row: &'a [u64],
    bias: Option<&'a [u64]>,
    min_sums: &'a [i64],
    dead: &'a [u8],
    flip: bool,
}

/// A single output channel's decision kernel with its per-channel state
/// pre-resolved — see [`PackedTiledMatrix::channel_eval`]. Borrows the
/// matrix; build one per channel, evaluate it across many activation
/// slices.
#[derive(Clone, Copy)]
pub struct ChannelEval<'a> {
    matrix: &'a PackedTiledMatrix,
    ctx: ChannelCtx<'a>,
}

impl ChannelEval<'_> {
    /// The channel's output bit for one packed activation word slice —
    /// identical to [`PackedTiledMatrix::forward_channel`] on the channel
    /// this evaluator was built for.
    ///
    /// # Panics
    /// Panics if `acts` is shorter than the weight rows.
    #[inline]
    pub fn bit(&self, acts: &[u64]) -> bool {
        self.matrix.channel_bit(&self.ctx, acts)
    }
}

/// The batched bit-packed deploy engine: a lowered [`PackedLayer`]
/// pipeline plus the digital classifier head.
///
/// Built once from a [`DeployedModel`] (carrying over any injected
/// faults), then evaluated on whole batches without RNG. Predictions are
/// bit-identical to [`DeployedModel::classify_digital`].
///
/// `PartialEq` compares the full lowered state (pipeline stages with
/// their packed matrices, classifier head, worker knob) — the equality
/// the undo-journal tests assert across `patch → evaluate → revert`.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedModel {
    input_shape: [usize; 3],
    layers: Vec<PackedLayer>,
    classifier: DeployedClassifier,
    workers: usize,
}

impl PackedModel {
    /// Lowers a deployed model into its packed pipeline plan (see
    /// [`super::pipeline`] for the lowering rules): conv cells become
    /// conv (+ pool) stages, dense cells become linear stages with a
    /// [`PackedLayer::Flatten`] inserted wherever the incoming shape is
    /// still spatial.
    pub fn from_deployed(model: &DeployedModel) -> Self {
        let mut layers = Vec::new();
        let mut shape = model.input_shape();
        for cell in model.cells() {
            if matches!(cell, DeployedCell::Dense(_)) && shape[1] * shape[2] != 1 {
                layers.push(PackedLayer::Flatten);
                shape = [shape[0] * shape[1] * shape[2], 1, 1];
            }
            for stage in PackedLayer::lower(cell) {
                shape = stage.out_shape(shape);
                layers.push(stage);
            }
        }
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            input_shape: model.input_shape(),
            layers,
            classifier: model.classifier().clone(),
            workers,
        }
    }

    /// Reassembles a packed model from decoded snapshot parts (the
    /// snapshot codec validates the layer shape chain before calling
    /// this). The worker count is a runtime knob, not model state, so it
    /// resets to the machine default.
    pub(crate) fn from_parts(
        input_shape: [usize; 3],
        layers: Vec<PackedLayer>,
        classifier: DeployedClassifier,
    ) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self {
            input_shape,
            layers,
            classifier,
            workers,
        }
    }

    /// The lowered pipeline stages, in execution order.
    pub fn layers(&self) -> &[PackedLayer] {
        &self.layers
    }

    /// The digital classifier head the pipeline's final plane feeds.
    pub fn classifier(&self) -> &DeployedClassifier {
        &self.classifier
    }

    /// Overrides the worker-thread count of the batch entry points
    /// (default: `std::thread::available_parallelism()`).
    ///
    /// # Errors
    /// [`DeployError::ZeroWorkers`](super::DeployError::ZeroWorkers) if
    /// `workers == 0`.
    pub fn with_workers(mut self, workers: usize) -> crate::Result<Self> {
        if workers == 0 {
            return Err(super::DeployError::ZeroWorkers);
        }
        self.workers = workers;
        Ok(self)
    }

    /// The worker-thread count the batch entry points fan across.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The expected input shape `[C, H, W]`.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// Injects fabrication faults directly into the lowered pipeline — the
    /// packed twin of [`DeployedModel::inject_faults`], built for Monte
    /// Carlo robustness campaigns where re-deploying and re-lowering the
    /// whole model per trial would dominate the runtime. Faults are drawn
    /// per physical die with the *same* RNG consumption order as the
    /// scalar path (layer by layer, tiles in plan order), so the same seed
    /// produces the same defects on either engine and faulted predictions
    /// stay bit-identical to the faulted scalar reference. The digital
    /// classifier head is assumed testable/repairable and stays clean.
    /// Returns the total defect count.
    pub fn inject_faults<R: Rng + ?Sized>(&mut self, model: &FaultModel, rng: &mut R) -> usize {
        let mut defects = 0usize;
        for layer in &mut self.layers {
            let Some(m) = layer.matrix_mut() else {
                continue;
            };
            let faults = draw_faults_tiled(model, &m.tile_dims(), rng);
            defects += faults.iter().map(InjectedFaults::count).sum::<usize>();
            m.apply_faults(&faults);
        }
        defects
    }

    /// [`Self::inject_faults`] with an undo journal — the clone-free trial
    /// primitive of the Monte Carlo robustness engine. Every patched
    /// weight word and dead-column pin is recorded with its prior value in
    /// `journal` (which is **appended to**, not cleared), so
    /// [`Self::revert_faults`] restores the model bit-for-bit afterwards.
    /// RNG consumption, the injected state and the returned defect count
    /// are identical to the unjournaled path.
    pub fn inject_faults_journaled<R: Rng + ?Sized>(
        &mut self,
        model: &FaultModel,
        rng: &mut R,
        journal: &mut PatchJournal,
    ) -> usize {
        let draws = self.draw_faults(model, rng);
        self.apply_draws_journaled(&draws, journal)
    }

    /// Draws one fault pattern for the whole pipeline **without applying
    /// it**: one per-die draw vector per pipeline stage (empty for
    /// weight-free stages), in stage order. Drawing is state-independent
    /// — [`draw_faults_tiled`] reads only the tile geometry and the RNG —
    /// so drawing every layer up front consumes the RNG exactly like the
    /// interleaved draw-and-apply walk of [`Self::inject_faults`]; the
    /// same seed names the same defects. The split exists for the delta
    /// engine: the robustness sweeps inspect the draw's fault cone
    /// ([`super::delta::DirtyChannels::from_draws`]) before committing it
    /// with [`Self::apply_draws_journaled`].
    pub fn draw_faults<R: Rng + ?Sized>(
        &self,
        model: &FaultModel,
        rng: &mut R,
    ) -> Vec<Vec<InjectedFaults>> {
        self.layers
            .iter()
            .map(|layer| match layer {
                PackedLayer::Conv(c) => draw_faults_tiled(model, &c.matrix().tile_dims(), rng),
                PackedLayer::Linear(l) => draw_faults_tiled(model, &l.matrix().tile_dims(), rng),
                PackedLayer::Pool(_) | PackedLayer::Flatten => Vec::new(),
            })
            .collect()
    }

    /// Applies a pre-drawn pipeline fault pattern (one entry per stage,
    /// as produced by [`Self::draw_faults`]) through the undo journal and
    /// returns the defect count. `draw_faults` + `apply_draws_journaled`
    /// is state-for-state identical to [`Self::inject_faults_journaled`].
    ///
    /// # Panics
    /// Panics if `draws.len()` does not match the stage count, a
    /// weight-free stage carries a non-empty draw, or a stage draw's
    /// length does not match its tile count.
    pub fn apply_draws_journaled(
        &mut self,
        draws: &[Vec<InjectedFaults>],
        journal: &mut PatchJournal,
    ) -> usize {
        assert_eq!(
            draws.len(),
            self.layers.len(),
            "draw / stage count mismatch"
        );
        let mut defects = 0usize;
        for (li, (layer, faults)) in self.layers.iter_mut().zip(draws).enumerate() {
            let Some(m) = layer.matrix_mut() else {
                assert!(faults.is_empty(), "fault draw on a weight-free stage");
                continue;
            };
            defects += faults.iter().map(InjectedFaults::count).sum::<usize>();
            m.apply_faults_journaled(faults, li, journal);
        }
        defects
    }

    /// Applies one stage's **pre-drawn** fault set through the journal —
    /// the explicit-site injection primitive of the ATPG screening loop
    /// and the fault-universe equivalence checks, which iterate *named*
    /// defects (see [`aqfp_crossbar::faults::StructuralFault`]) instead
    /// of drawing them from rates. `faults` must be aligned with the
    /// stage matrix's [`PackedTiledMatrix::tile_dims`] (or empty for a
    /// no-op); [`Self::revert_faults`] restores the model bit-for-bit.
    ///
    /// # Panics
    /// Panics if `layer` is out of range or names a weight-free stage
    /// (pool/flatten), or on a non-empty draw/tile count mismatch.
    pub fn apply_layer_faults_journaled(
        &mut self,
        layer: usize,
        faults: &[InjectedFaults],
        journal: &mut PatchJournal,
    ) {
        self.layers[layer]
            .matrix_mut()
            .expect("fault injection on a weight-free stage")
            .apply_faults_journaled(faults, layer, journal);
    }

    /// Reverts every patch recorded in `journal` — in reverse record
    /// order, the contract that makes overlapping patches (adjacent row
    /// tiles sharing a boundary word, repeated pins of one SWAR bias word)
    /// unwind to the original state — then clears the journal for reuse.
    /// After the call the model is bit-for-bit the one
    /// [`Self::inject_faults_journaled`] started from: weight planes, dead
    /// overrides and SWAR lane biases included.
    ///
    /// # Panics
    /// Panics if a journal entry references a stage without a weight
    /// matrix (a journal recorded on a different model).
    pub fn revert_faults(&mut self, journal: &mut PatchJournal) {
        for p in journal.pins().iter().rev() {
            self.layers[p.layer]
                .matrix_mut()
                .expect("journal entry on a weight-free stage")
                .restore_pin(p.channel, p.tile, p.prior_dead, p.prior_bias);
        }
        for w in journal.words().iter().rev() {
            self.layers[w.layer]
                .matrix_mut()
                .expect("journal entry on a weight-free stage")
                .restore_word(w.channel, w.word, w.prior);
        }
        journal.clear();
    }

    /// Packs samples `[0, n)` of a `[N, C, H, W]` tensor into the
    /// batch-major activation matrix (one row per sample, sign-binarized
    /// like [`BitMap::from_tensor_sample`]).
    ///
    /// # Panics
    /// Panics unless the tensor is 4-D and `n` is in range.
    pub fn pack_batch(images: &Tensor, n: usize) -> PackedMatrix {
        let s = images.shape();
        assert_eq!(s.len(), 4, "expected [N, C, H, W]");
        assert!(n <= s[0], "batch size out of range");
        let per: usize = s[1] * s[2] * s[3];
        let mut batch = PackedMatrix::zeros(n, per);
        for i in 0..n {
            for (j, &v) in images.data()[i * per..(i + 1) * per].iter().enumerate() {
                if v as f64 >= 0.0 {
                    batch.set(i, j, true);
                }
            }
        }
        batch
    }

    /// Classifies one packed `[C, H, W]` input plane by folding it through
    /// the pipeline plan.
    pub fn classify_plane(&self, plane: &BitPlane) -> (usize, Vec<f32>) {
        let mut act = plane.clone();
        let mut shape = self.input_shape;
        for layer in &self.layers {
            let (next, next_shape) = layer.forward(act, shape);
            act = next;
            shape = next_shape;
        }
        let scores = self.classifier.scores_plane(&act);
        (argmax(&scores), scores)
    }

    /// Classifies a coalesced batch of packed input planes on the calling
    /// thread — the serving layer's batch kernel. Conv, pool and flatten
    /// stages fold each plane individually; linear stages pack the whole
    /// batch into one activation matrix and run the blocked GEMM kernel
    /// ([`PackedTiledMatrix::forward_matrix`]), which is where coalescing
    /// arrivals into one batch pays. Results come back in input order,
    /// bit-identical to per-sample [`Self::classify_plane`] calls.
    ///
    /// # Panics
    /// Panics if any plane's length does not match the input shape.
    pub fn classify_planes(&self, planes: &[BitPlane]) -> Vec<(usize, Vec<f32>)> {
        let n = planes.len();
        if n == 0 {
            return Vec::new();
        }
        let in_bits: usize = self.input_shape.iter().product();
        for p in planes {
            assert_eq!(p.len(), in_bits, "input plane length mismatch");
        }
        let mut acts: Vec<BitPlane> = planes.to_vec();
        let mut shape = self.input_shape;
        for layer in &self.layers {
            match layer {
                PackedLayer::Linear(l) if n > 1 => {
                    let out = l.matrix().forward_matrix(&PackedMatrix::from_planes(&acts));
                    for (s, plane) in acts.iter_mut().enumerate() {
                        let mut p = BitPlane::zeros(out.rows());
                        for c in 0..out.rows() {
                            if out.get(c, s) {
                                p.set(c, true);
                            }
                        }
                        *plane = p;
                    }
                    shape = [out.rows(), 1, 1];
                }
                _ => {
                    let mut next_shape = shape;
                    for plane in acts.iter_mut() {
                        let taken = std::mem::replace(plane, BitPlane::zeros(0));
                        let (next, ns) = layer.forward(taken, shape);
                        *plane = next;
                        next_shape = ns;
                    }
                    shape = next_shape;
                }
            }
        }
        acts.iter()
            .map(|plane| {
                let scores = self.classifier.scores_plane(plane);
                (argmax(&scores), scores)
            })
            .collect()
    }

    /// Classifies sample `n` of an image batch; returns `(label, scores)`.
    pub fn classify(&self, images: &Tensor, n: usize) -> (usize, Vec<f32>) {
        let map = BitMap::from_tensor_sample(images, n);
        self.classify_plane(&map.to_plane())
    }

    /// Classifies the first `limit` samples (default: all) of a
    /// `[N, C, H, W]` tensor, fanning the batch across worker threads.
    pub fn classify_batch(&self, images: &Tensor, limit: Option<usize>) -> Vec<(usize, Vec<f32>)> {
        let n = limit.map_or(images.shape()[0], |l| l.min(images.shape()[0]));
        let batch = Self::pack_batch(images, n);
        let mut results: Vec<Option<(usize, Vec<f32>)>> = vec![None; n];
        if n == 0 {
            return Vec::new();
        }
        let chunk = n.div_ceil(self.workers.min(n));
        std::thread::scope(|s| {
            for (ci, slots) in results.chunks_mut(chunk).enumerate() {
                let batch = &batch;
                s.spawn(move || {
                    for (j, slot) in slots.iter_mut().enumerate() {
                        *slot = Some(self.classify_plane(&batch.row_plane(ci * chunk + j)));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every chunk was processed"))
            .collect()
    }

    /// Top-1 accuracy over pre-packed input planes with their labels —
    /// the eval-set-cache entry point of the robustness sweeps: the
    /// campaign packs its evaluation samples once and every trial scores
    /// the shared planes on the calling thread (via
    /// [`Self::classify_planes`], bit-identical to per-sample
    /// classification), instead of re-binarizing the tensor per trial.
    ///
    /// # Panics
    /// Panics if `planes` is empty or the lengths differ.
    pub fn accuracy_planes(&self, planes: &[BitPlane], labels: &[usize]) -> f64 {
        assert_eq!(planes.len(), labels.len(), "plane/label count mismatch");
        assert!(!planes.is_empty(), "accuracy over zero samples");
        let preds = self.classify_planes(planes);
        let correct = preds
            .iter()
            .zip(labels)
            .filter(|((p, _), &l)| *p == l)
            .count();
        correct as f64 / planes.len() as f64
    }

    /// Top-1 accuracy over (the first `limit` samples of) a dataset.
    pub fn accuracy(&self, data: &bnn_datasets::Dataset, limit: Option<usize>) -> f64 {
        let n = limit.map_or(data.len(), |l| l.min(data.len()));
        assert!(n > 0, "accuracy over zero samples");
        let preds = self.classify_batch(&data.images, Some(n));
        let correct = preds
            .iter()
            .zip(&data.labels)
            .filter(|((p, _), &l)| *p == l)
            .count();
        correct as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardwareConfig;
    use crate::deploy::deploy;
    use crate::spec::NetSpec;
    use aqfp_device::Bit;

    fn hw(rows: usize, cols: usize) -> HardwareConfig {
        HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            ..Default::default()
        }
    }

    fn pseudo_signs(n: usize, salt: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if (i * 7 + salt * 11 + 3) % 5 < 2 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    #[test]
    fn packed_matrix_matches_scalar_digital_on_ragged_geometry() {
        // fan_in 70 with 8-row crossbars: 9 row tiles, the last ragged;
        // 6 outputs over 4-col crossbars: ragged column group too.
        let h = hw(8, 4);
        let fan_in = 70;
        let out = 6;
        let signs = pseudo_signs(fan_in * out, 1);
        let vth: Vec<f64> = (0..out).map(|o| o as f64 - 2.5).collect();
        let flips: Vec<bool> = (0..out).map(|o| o % 3 == 0).collect();
        let m = TiledMatrix::new(&signs, fan_in, out, vth, flips, &h);
        let packed = PackedTiledMatrix::from_tiled(&m);
        for salt in 0..24 {
            let input: Vec<Bit> = (0..fan_in)
                .map(|i| Bit::from_bool((i * 13 + salt * 7) % 3 == 0))
                .collect();
            let scalar = m.forward_digital(&input);
            let plane = packed.forward_plane(&BitPlane::from_bits(&input));
            assert_eq!(plane.to_bits(), scalar, "salt {salt}");
        }
    }

    #[test]
    fn packed_model_is_bit_identical_to_scalar_digital_mlp() {
        let h = hw(16, 16);
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let model = spec.build_software(&h, 3);
        let deployed = deploy(&spec, &model, &h).unwrap();
        let packed = deployed.to_packed().with_workers(2).unwrap();
        let data = bnn_datasets::digits::generate_digits(&bnn_datasets::SynthConfig {
            samples_per_class: 2,
            ..Default::default()
        });
        let batch = packed.classify_batch(&data.images, None);
        assert_eq!(batch.len(), data.len());
        for (i, (label, scores)) in batch.iter().enumerate() {
            let (sl, ss) = deployed.classify_digital(&data.images, i);
            assert_eq!((*label, scores), (sl, &ss), "sample {i}");
        }
    }

    #[test]
    fn packed_model_is_bit_identical_on_conv_pipeline() {
        let h = hw(32, 16);
        let spec = NetSpec::vgg_small([1, 16, 16], 4, 10);
        let model = spec.build_software(&h, 4);
        let deployed = deploy(&spec, &model, &h).unwrap();
        let packed = deployed.to_packed();
        let data = bnn_datasets::digits::generate_digits(&bnn_datasets::SynthConfig {
            samples_per_class: 1,
            ..Default::default()
        });
        for i in 0..3 {
            assert_eq!(
                packed.classify(&data.images, i),
                deployed.classify_digital(&data.images, i),
                "sample {i}"
            );
        }
    }

    #[test]
    fn tile_dims_cover_the_matrix() {
        let h = hw(8, 4);
        let (fan_in, out) = (70, 6);
        let signs = pseudo_signs(fan_in * out, 2);
        let m = TiledMatrix::new(&signs, fan_in, out, vec![0.0; out], vec![false; out], &h);
        let packed = PackedTiledMatrix::from_tiled(&m);
        let dims = packed.tile_dims();
        assert_eq!(dims.len(), m.plan().tiles.len());
        for (d, t) in dims.iter().zip(&m.plan().tiles) {
            assert_eq!(*d, (t.rows, t.cols));
        }
        let cells: usize = dims.iter().map(|&(r, c)| r * c).sum();
        assert_eq!(cells, fan_in * out);
    }

    /// Injecting the same seed into the scalar deployment and into the
    /// lowered packed pipeline must produce the same defects and
    /// bit-identical classifications — including saturated dead-column
    /// rates that exercise the SWAR bias patching.
    #[test]
    fn packed_injection_matches_scalar_injection() {
        use aqfp_device::{DeviceRng, SeedableRng};
        let h = hw(16, 16); // 16-bit SWAR lanes on the dense stages
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let model = spec.build_software(&h, 9);
        let data = bnn_datasets::digits::generate_digits(&bnn_datasets::SynthConfig {
            samples_per_class: 2,
            ..Default::default()
        });
        for (stuck, dead) in [(0.0, 0.0), (0.3, 0.0), (0.0, 1.0), (0.2, 0.4)] {
            let fm = FaultModel::new(stuck, dead).unwrap();
            let mut deployed = deploy(&spec, &model, &h).unwrap();
            let mut packed = deployed.to_packed().with_workers(2).unwrap();
            let scalar_defects = deployed.inject_faults(&fm, &mut DeviceRng::seed_from_u64(21));
            let packed_defects = packed.inject_faults(&fm, &mut DeviceRng::seed_from_u64(21));
            assert_eq!(scalar_defects, packed_defects, "rates ({stuck}, {dead})");
            for i in 0..data.len() {
                assert_eq!(
                    packed.classify(&data.images, i),
                    deployed.classify_digital(&data.images, i),
                    "rates ({stuck}, {dead}), sample {i}"
                );
            }
        }
    }

    #[test]
    fn single_worker_and_many_workers_agree() {
        let h = hw(16, 16);
        let spec = NetSpec::mlp(&[1, 16, 16], &[16], 10);
        let model = spec.build_software(&h, 5);
        let deployed = deploy(&spec, &model, &h).unwrap();
        let data = bnn_datasets::digits::generate_digits(&bnn_datasets::SynthConfig {
            samples_per_class: 1,
            ..Default::default()
        });
        let one = deployed.to_packed().with_workers(1).unwrap();
        let many = deployed.to_packed().with_workers(7).unwrap();
        assert_eq!(
            one.classify_batch(&data.images, None),
            many.classify_batch(&data.images, None)
        );
    }

    #[test]
    fn zero_workers_is_an_error_not_a_panic() {
        let h = hw(16, 16);
        let spec = NetSpec::mlp(&[1, 16, 16], &[16], 10);
        let model = spec.build_software(&h, 5);
        let deployed = deploy(&spec, &model, &h).unwrap();
        assert!(matches!(
            deployed.to_packed().with_workers(0),
            Err(crate::deploy::DeployError::ZeroWorkers)
        ));
    }

    /// The coalesced batch kernel must be bit-identical to per-sample
    /// evaluation on both pipeline shapes (MLP: the linear GEMM path;
    /// VGG: conv/pool stages folding per plane), for every batch size
    /// around the word boundary.
    #[test]
    fn classify_planes_matches_per_sample_classify() {
        for (spec, rows, cols) in [
            (NetSpec::mlp(&[1, 16, 16], &[32], 10), 16usize, 16usize),
            (NetSpec::vgg_small([1, 16, 16], 4, 10), 32, 16),
        ] {
            let h = hw(rows, cols);
            let model = spec.build_software(&h, 6);
            let deployed = deploy(&spec, &model, &h).unwrap();
            let packed = deployed.to_packed();
            let data = bnn_datasets::digits::generate_digits(&bnn_datasets::SynthConfig {
                samples_per_class: 7,
                ..Default::default()
            });
            let planes: Vec<BitPlane> = (0..data.len())
                .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
                .collect();
            for n in [0usize, 1, 2, 63, 64, 65, 70] {
                let n = n.min(planes.len());
                let batch = packed.classify_planes(&planes[..n]);
                assert_eq!(batch.len(), n);
                for (i, got) in batch.iter().enumerate() {
                    assert_eq!(*got, packed.classify_plane(&planes[i]), "sample {i} of {n}");
                }
            }
        }
    }
}
