//! The packed stochastic engine: the full SC datapath evaluated on
//! bitplanes, flip-for-flip compatible with the scalar reference.
//!
//! [`DeployedModel::classify`](super::DeployedModel::classify) simulates
//! the stochastic datapath one element at a time: per output pixel, per
//! crossbar tile, per column it computes the merged current, evaluates the
//! erf-shaped gray-zone law, draws an `L`-bit observation window and feeds
//! the streams through the APC accumulator. That fidelity is exactly what
//! variation-aware robustness sweeps need — and far too slow to run at
//! Monte Carlo scale. This module is the word-parallel twin on the
//! [`PackedLayer`] pipeline IR, built from three pieces:
//!
//! 1. **Packed tile sums** — per-tile XNOR match counts come from the same
//!    SWAR `lane_counts` reduction and masked-popcount spans the digital
//!    engine votes with ([`PackedTiledMatrix::matches_into`]), instead of
//!    per-element multiply loops.
//! 2. **Flip-probability tables** — every `(tile, column)` cell's
//!    gray-zone law is evaluated **once per operating condition** over all
//!    integer sums it can produce, quantized into Bernoulli draw
//!    thresholds ([`aqfp_sc::bitplane::bernoulli_threshold`]). Per-trial
//!    [`VariationModel`] state (gray-zone width scale, attenuation delta,
//!    temperature drift) enters here: the tables are built from the
//!    *effective* width and unit currents while the programmed thresholds
//!    stay at their calibration-time values.
//! 3. **Packed Bernoulli streams** — each cell's `L`-cycle observation
//!    window is sampled as a word mask
//!    ([`aqfp_sc::bitplane::sample_bernoulli_words`]); APC accumulation
//!    reduces to popcounts over the masks (exact counter) or a
//!    cycle-transposed walk of the same masks (approximate counter).
//!
//! # One semantics, shared with the scalar reference
//!
//! The engine consumes the RNG in **exactly** the scalar order (pixel →
//! column group → row tile → column → cycle), draws one `u64` per
//! unsaturated cycle bit, and skips draws for saturated probabilities
//! precisely where `AqfpBuffer::observe` does. The integer-threshold
//! comparison is bit-equivalent to the scalar `gen::<f64>() < p` (see
//! [`bernoulli_threshold`]), so
//! **same seed ⇒ same per-element flip decisions ⇒ identical
//! classifications** — enforced by seed-matched differential proptests
//! over ragged geometries (`tests/props.rs`). The speedup comes from
//! everything around the draws: popcounted tile sums, table lookups
//! instead of per-element erf evaluations, mask words instead of
//! per-cycle `Vec<Bit>` allocations (see `BENCH_stochastic.json`).
//!
//! In the gray-zone → 0 limit (`VariationModel` width scale 0) every
//! table entry saturates and the engine degenerates to the digital
//! decision rule away from exact comparator ties.

use super::model::argmax;
use super::packed::PackedTiledMatrix;
use super::pipeline::{PackedConvStage, PackedLayer};
use super::{BitMap, PackedModel};
use aqfp_device::{Bit, GrayZone, VariationModel};
use aqfp_sc::accumulate::CounterKind;
use aqfp_sc::bitplane::{
    bernoulli_threshold, packed_im2col, sample_bernoulli_planes, sample_bernoulli_words,
    BERNOULLI_ALWAYS, BERNOULLI_NEVER,
};
use aqfp_sc::{Apc, BitPlane, PackedMatrix};
use bnn_nn::Tensor;
use rand::Rng;

/// The per-cell Bernoulli draw thresholds of one [`PackedTiledMatrix`] at
/// one operating condition, indexed by XNOR match count: entry
/// `(channel, tile, matches)` is the quantized probability that the
/// tile's neuron reads '1' for that integer sum, with the draw-free
/// sentinels of [`aqfp_sc::bitplane::bernoulli_threshold`] marking
/// saturated cells. Built by [`PackedTiledMatrix::stochastic_tables`].
#[derive(Debug, Clone)]
pub struct MatrixStochasticTables {
    /// `[out × stride]` channel-major thresholds; a channel's slice is
    /// indexed `base[r] + matches`.
    thr: Vec<u64>,
    /// `k + 1` prefix offsets (tile `r`'s sub-table spans
    /// `base[r]..base[r] + tile_rows(r) + 1`; `base[k]` is the entries
    /// per channel — the `thr` channel stride).
    base: Vec<usize>,
    /// Output channels the tables were built for.
    out: usize,
    /// Cell indices `channel·k + tile` in scalar RNG draw order (column
    /// groups outer, then row tiles, then columns) — the iteration order
    /// of the plane-at-a-time sampling batch.
    order: Vec<u32>,
    /// Draw-order-aligned start offsets of each cell's sub-table in
    /// `thr` (`channel·stride + base[tile]`).
    toff: Vec<u32>,
}

impl MatrixStochasticTables {
    fn build(m: &PackedTiledMatrix, vm: &VariationModel) -> Self {
        let k = m.row_tiles();
        // The one shared definition of how variation lands on operating
        // conditions — the same call the scalar drift path makes, so both
        // engines evaluate the identical effective law.
        let varied = aqfp_crossbar::array::CrossbarConfig {
            grayzone_ua: m.grayzone_ua(),
            attenuation: *m.attenuation(),
        }
        .with_variation(vm);
        let width = varied.grayzone_ua;
        let attenuation = varied.attenuation;
        let mut base = Vec::with_capacity(k + 1);
        let mut stride = 0usize;
        for r in 0..k {
            base.push(stride);
            stride += m.tile_rows(r) + 1;
        }
        base.push(stride);
        let mut thr = Vec::with_capacity(m.out() * stride);
        for c in 0..m.out() {
            for r in 0..k {
                let rows = m.tile_rows(r);
                // The drifted unit current and gray-zone width; the
                // programmed threshold stays where calibration put it —
                // evaluating exactly the law the (varied) scalar crossbar
                // senses with, so probabilities agree bit-for-bit.
                let i1 = attenuation.i1_ua(rows);
                let th = m.threshold_ua(c, r);
                let law = if width > 0.0 {
                    GrayZone::new(th, width)
                } else {
                    GrayZone::deterministic(th)
                };
                for matches in 0..=rows {
                    let sum = 2 * matches as i64 - rows as i64;
                    thr.push(bernoulli_threshold(law.probability_one(sum as f64 * i1)));
                }
            }
        }
        // Scalar draw order, frozen once: the evaluation loop walks cells
        // through these two arrays instead of re-deriving the group
        // nesting per pixel.
        let groups = m.col_group_starts();
        let mut order = Vec::with_capacity(m.out() * k);
        let mut toff = Vec::with_capacity(m.out() * k);
        for g in 0..groups.len() - 1 {
            for (r, &b) in base[..k].iter().enumerate() {
                for c in groups[g]..groups[g + 1] {
                    order.push((c * k + r) as u32);
                    toff.push((c * stride + b) as u32);
                }
            }
        }
        Self {
            thr,
            base,
            out: m.out(),
            order,
            toff,
        }
    }

    fn check(&self, m: &PackedTiledMatrix) {
        let tiles_match = self.base.len() == m.row_tiles() + 1
            && (0..m.row_tiles()).all(|r| self.base[r + 1] - self.base[r] == m.tile_rows(r) + 1);
        assert!(
            self.out == m.out() && tiles_match,
            "stochastic tables were built for a different matrix geometry"
        );
    }
}

/// Reusable per-evaluation buffers of the stochastic engine (tile match
/// counts, packed observation streams, the APC's cycle word).
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    matches: Vec<u32>,
    streams: Vec<u64>,
    word: Vec<Bit>,
    cur: Vec<u64>,
    thrs: Vec<u64>,
    offs: Vec<usize>,
}

/// Evaluates one packed activation word slice through the stochastic
/// datapath of `m`, reporting each channel's output bit through `sink`.
///
/// RNG consumption follows the scalar engine exactly: column groups in
/// plan order, row tiles within a group, columns within a tile, cycles
/// within a window; saturated cells and draw-free sentinels consume
/// nothing. Dead columns draw their (discarded) stream like the scalar
/// path, then read constant.
fn eval_channels<R: Rng + ?Sized>(
    m: &PackedTiledMatrix,
    tables: &MatrixStochasticTables,
    acts: &[u64],
    rng: &mut R,
    scratch: &mut Scratch,
    mut sink: impl FnMut(usize, bool),
) {
    let k = m.row_tiles();
    let out = m.out();
    let window = m.window();
    let stream_words = window.div_ceil(64);
    tables.check(m);

    scratch.matches.resize(out * k, 0);
    m.matches_into(acts, &mut scratch.matches);
    scratch.streams.resize(out * k * stream_words, 0);

    // RNG pass: gather every cell's Bernoulli threshold (selected by its
    // match count) in scalar draw order, then sample all observation
    // windows in one plane-at-a-time batch. The sampler walks the cells
    // in the given order consuming the RNG exactly like per-cell calls
    // would, but the draw loop stays tight across the whole matrix.
    scratch.thrs.clear();
    scratch.offs.clear();
    for (&idx, &toff) in tables.order.iter().zip(&tables.toff) {
        scratch
            .thrs
            .push(tables.thr[toff as usize + scratch.matches[idx as usize] as usize]);
        scratch.offs.push(idx as usize * stream_words);
    }
    sample_bernoulli_planes(
        &scratch.thrs,
        &scratch.offs,
        window,
        &mut scratch.streams,
        rng,
    );
    // Dead columns: the die's neuron drew its (discarded) window above —
    // the RNG stream must stay aligned with the scalar engine — but the
    // stuck output reads a constant (the pin sentinels consume no draws).
    for c in 0..out {
        for r in 0..k {
            if let Some(b) = m.dead_override(c, r) {
                let idx = c * k + r;
                let slot = &mut scratch.streams[idx * stream_words..(idx + 1) * stream_words];
                let pin = if b.as_bool() {
                    BERNOULLI_ALWAYS
                } else {
                    BERNOULLI_NEVER
                };
                sample_bernoulli_words(pin, window, slot, rng);
            }
        }
    }

    // APC accumulation + midpoint comparator (ties to '1'), per channel.
    let half = (k * window) as u64; // doubled threshold, like the scalar module
    match m.counter() {
        CounterKind::Exact => {
            for c in 0..out {
                let total: u64 = scratch.streams[c * k * stream_words..(c + 1) * k * stream_words]
                    .iter()
                    .map(|w| w.count_ones() as u64)
                    .sum();
                sink(c, (2 * total >= half) != m.flips()[c]);
            }
        }
        CounterKind::Approximate => {
            // The approximate APC's counting error depends on the bit
            // pattern *across* tiles per cycle, so transpose the packed
            // streams back into cycle words and mirror the scalar count.
            let apc = Apc::new(k);
            scratch.word.resize(k, Bit::Zero);
            for c in 0..out {
                let mut total = 0u64;
                for t in 0..window {
                    for r in 0..k {
                        let w = scratch.streams[(c * k + r) * stream_words + t / 64];
                        scratch.word[r] = Bit::from_bool((w >> (t % 64)) & 1 == 1);
                    }
                    total += apc.count_approx(&scratch.word) as u64;
                }
                sink(c, (2 * total >= half) != m.flips()[c]);
            }
        }
    }
}

impl PackedTiledMatrix {
    /// Precomputes the stochastic engine's flip-probability tables for one
    /// operating condition: for every `(row tile, channel)` cell and every
    /// XNOR match count it can produce, the gray-zone probability of the
    /// merged current (at the variation's effective gray-zone width and
    /// drifted unit currents, against the *programmed* threshold) is
    /// quantized into a Bernoulli draw threshold. Faults never invalidate
    /// the tables — stuck cells only move which entry is looked up, and
    /// dead columns are handled at evaluation time — so one table set
    /// serves every trial of a Monte Carlo campaign at the same operating
    /// condition.
    pub fn stochastic_tables(&self, vm: &VariationModel) -> MatrixStochasticTables {
        MatrixStochasticTables::build(self, vm)
    }

    /// Evaluates all output channels for one packed activation plane
    /// through the **stochastic** datapath — the word-parallel counterpart
    /// of `TiledMatrix::forward`, seed-matched flip for flip.
    ///
    /// # Panics
    /// Panics if `act.len() != fan_in()` or `tables` was built for a
    /// different geometry.
    pub fn forward_stochastic<R: Rng + ?Sized>(
        &self,
        tables: &MatrixStochasticTables,
        act: &BitPlane,
        rng: &mut R,
    ) -> BitPlane {
        assert_eq!(act.len(), self.fan_in(), "input length mismatch");
        let mut out = BitPlane::zeros(self.out());
        let mut scratch = Scratch::default();
        eval_channels(self, tables, act.words(), rng, &mut scratch, |c, bit| {
            if bit {
                out.set(c, true);
            }
        });
        out
    }
}

/// The precomputed per-stage flip-probability tables of a
/// [`PackedModel`]'s stochastic mode — one operating condition
/// ([`VariationModel`]) captured once, shared by every evaluation (and
/// every fault-injected clone) at that condition.
#[derive(Debug, Clone)]
pub struct StochasticTables {
    /// Aligned with `PackedModel::layers`: `Some` for weighted stages.
    stages: Vec<Option<MatrixStochasticTables>>,
    /// The operating condition the tables were built for.
    variation: VariationModel,
}

impl StochasticTables {
    /// The operating condition the tables were built for.
    pub fn variation(&self) -> &VariationModel {
        &self.variation
    }
}

/// Runs one conv stage stochastically: the word-level im2col gather of the
/// digital path, then the stochastic tile datapath per output pixel in
/// scalar (row-major) pixel order, output bits assembled as whole words.
fn conv_forward_stochastic<R: Rng + ?Sized>(
    stage: &PackedConvStage,
    tables: &MatrixStochasticTables,
    input: &BitPlane,
    shape: [usize; 3],
    rng: &mut R,
    scratch: &mut Scratch,
) -> (BitPlane, [usize; 3]) {
    let [c, h, w] = shape;
    assert_eq!(input.len(), c * h * w, "plane/shape mismatch");
    let out_shape = stage.out_shape(shape);
    let (_, k, stride, pad) = stage.geometry();
    let fields = packed_im2col(input, c, h, w, k, stride, pad, false);
    let m = stage.matrix();
    let n = fields.rows();
    let fw = fields.words_per_row();
    let storage = fields.storage();
    let mut out = PackedMatrix::zeros(m.out(), n);
    scratch.cur.clear();
    scratch.cur.resize(m.out(), 0);
    let mut cur = std::mem::take(&mut scratch.cur);
    for a in 0..n {
        let acts = &storage[a * fw..(a + 1) * fw];
        eval_channels(m, tables, acts, rng, scratch, |ch, bit| {
            cur[ch] |= (bit as u64) << (a % 64);
        });
        if a % 64 == 63 {
            for (ch, word) in cur.iter_mut().enumerate() {
                out.row_words_mut(ch)[a / 64] = *word;
                *word = 0;
            }
        }
    }
    if !n.is_multiple_of(64) {
        for (ch, word) in cur.iter_mut().enumerate() {
            out.row_words_mut(ch)[n / 64] = *word;
        }
    }
    scratch.cur = cur;
    (out.concat_rows(), out_shape)
}

impl PackedModel {
    /// Precomputes the stochastic mode's flip-probability tables for one
    /// operating condition (see
    /// [`PackedTiledMatrix::stochastic_tables`]): every weighted pipeline
    /// stage gets its per-cell Bernoulli thresholds at the variation's
    /// effective gray-zone width and drifted unit currents. Build once per
    /// condition; the tables are valid for every fault-injected clone of
    /// this model, which is what lets a variation × fault-rate campaign
    /// share them across trials.
    pub fn stochastic_tables(&self, vm: &VariationModel) -> StochasticTables {
        StochasticTables {
            stages: self
                .layers()
                .iter()
                .map(|layer| match layer {
                    PackedLayer::Conv(c) => Some(c.matrix().stochastic_tables(vm)),
                    PackedLayer::Linear(l) => Some(l.matrix().stochastic_tables(vm)),
                    PackedLayer::Pool(_) | PackedLayer::Flatten => None,
                })
                .collect(),
            variation: *vm,
        }
    }

    /// Classifies one packed `[C, H, W]` plane through the **stochastic**
    /// datapath: weighted stages run the packed SC simulation (gray-zone
    /// flips, observation windows, APC accumulation), pool/flatten stages
    /// and the classifier head are deterministic exactly as in the scalar
    /// engine. Seed-matched with
    /// [`DeployedModel::classify`](super::DeployedModel::classify): the
    /// same RNG state produces the same label and scores.
    pub fn classify_stochastic_plane<R: Rng + ?Sized>(
        &self,
        tables: &StochasticTables,
        plane: &BitPlane,
        rng: &mut R,
    ) -> (usize, Vec<f32>) {
        let mut scratch = Scratch::default();
        self.classify_plane_stochastic_with(tables, plane.clone(), rng, &mut scratch)
    }

    /// Classifies sample `n` of an image batch through the stochastic
    /// datapath; returns `(label, scores)`. See
    /// [`PackedModel::classify_stochastic_plane`].
    pub fn classify_stochastic<R: Rng + ?Sized>(
        &self,
        tables: &StochasticTables,
        images: &Tensor,
        n: usize,
        rng: &mut R,
    ) -> (usize, Vec<f32>) {
        let map = BitMap::from_tensor_sample(images, n);
        self.classify_stochastic_plane(tables, &map.to_plane(), rng)
    }

    /// Top-1 accuracy of the stochastic engine over (the first `limit`
    /// samples of) a dataset, evaluated sequentially so the RNG
    /// consumption — and therefore every accuracy figure — is seed-matched
    /// with the scalar `DeployedModel::accuracy`.
    pub fn accuracy_stochastic<R: Rng + ?Sized>(
        &self,
        tables: &StochasticTables,
        data: &bnn_datasets::Dataset,
        rng: &mut R,
        limit: Option<usize>,
    ) -> f64 {
        let n = limit.map_or(data.len(), |l| l.min(data.len()));
        assert!(n > 0, "accuracy over zero samples");
        let mut scratch = Scratch::default();
        let mut correct = 0usize;
        for i in 0..n {
            let plane = BitMap::from_tensor_sample(&data.images, i).to_plane();
            let (pred, _) = self.classify_plane_stochastic_with(tables, plane, rng, &mut scratch);
            if pred == data.labels[i] {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }

    /// The shared folding loop: scratch buffers persist across calls so
    /// batch evaluation does one allocation set, not one per sample.
    fn classify_plane_stochastic_with<R: Rng + ?Sized>(
        &self,
        tables: &StochasticTables,
        mut act: BitPlane,
        rng: &mut R,
        scratch: &mut Scratch,
    ) -> (usize, Vec<f32>) {
        assert_eq!(
            tables.stages.len(),
            self.layers().len(),
            "stochastic tables were built for a different pipeline"
        );
        let mut shape = self.input_shape();
        for (layer, tab) in self.layers().iter().zip(&tables.stages) {
            (act, shape) = match (layer, tab) {
                (PackedLayer::Conv(c), Some(t)) => {
                    conv_forward_stochastic(c, t, &act, shape, rng, scratch)
                }
                (PackedLayer::Linear(l), Some(t)) => {
                    let m = l.matrix();
                    let mut out = BitPlane::zeros(m.out());
                    eval_channels(m, t, act.words(), rng, scratch, |ch, bit| {
                        if bit {
                            out.set(ch, true);
                        }
                    });
                    let f = out.len();
                    (out, [f, 1, 1])
                }
                (PackedLayer::Pool(_) | PackedLayer::Flatten, None) => layer.forward(act, shape),
                _ => unreachable!("stochastic tables misaligned with the pipeline"),
            };
        }
        let scores = self.classifier().scores_plane(&act);
        (argmax(&scores), scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardwareConfig;
    use crate::deploy::{deploy, TiledMatrix};
    use crate::spec::NetSpec;
    use aqfp_device::{DeviceRng, SeedableRng};

    fn hw(rows: usize, cols: usize, grayzone_ua: f64, bitstream_len: usize) -> HardwareConfig {
        HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            grayzone_ua,
            bitstream_len,
            ..Default::default()
        }
    }

    fn pseudo_signs(n: usize, salt: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if (i * 7 + salt * 11 + 3) % 5 < 2 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    /// The core tentpole property at matrix level: same seed, same flips,
    /// same outputs as the scalar stochastic datapath — on a ragged
    /// multi-tile geometry with a wide gray-zone (plenty of unsaturated
    /// cells, so the RNG alignment is actually exercised).
    #[test]
    fn packed_stochastic_is_seed_matched_with_scalar() {
        let h = hw(8, 4, 8.0, 16);
        let (fan_in, out) = (70, 6);
        let signs = pseudo_signs(fan_in * out, 1);
        let vth: Vec<f64> = (0..out).map(|o| o as f64 * 0.3 - 0.7).collect();
        let flips: Vec<bool> = (0..out).map(|o| o % 3 == 0).collect();
        let m = TiledMatrix::new(&signs, fan_in, out, vth, flips, &h);
        let packed = PackedTiledMatrix::from_tiled(&m);
        let tables = packed.stochastic_tables(&VariationModel::nominal());
        let mut scalar_rng = DeviceRng::seed_from_u64(33);
        let mut packed_rng = DeviceRng::seed_from_u64(33);
        for salt in 0..16 {
            let input: Vec<Bit> = (0..fan_in)
                .map(|i| Bit::from_bool((i * 13 + salt * 7) % 3 == 0))
                .collect();
            let scalar = m.forward(&input, &mut scalar_rng);
            let plane =
                packed.forward_stochastic(&tables, &BitPlane::from_bits(&input), &mut packed_rng);
            assert_eq!(plane.to_bits(), scalar, "salt {salt}");
        }
    }

    /// Model level: the packed stochastic engine reproduces
    /// `DeployedModel::classify` — labels and scores — from the same seed.
    #[test]
    fn packed_model_stochastic_matches_scalar_classify() {
        let h = hw(16, 16, 4.0, 8);
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let model = spec.build_software(&h, 3);
        let deployed = deploy(&spec, &model, &h).unwrap();
        let packed = deployed.to_packed();
        let tables = packed.stochastic_tables(&VariationModel::nominal());
        let data = bnn_datasets::digits::generate_digits(&bnn_datasets::SynthConfig {
            samples_per_class: 2,
            ..Default::default()
        });
        let mut scalar_rng = DeviceRng::seed_from_u64(7);
        let mut packed_rng = DeviceRng::seed_from_u64(7);
        for i in 0..data.len() {
            assert_eq!(
                packed.classify_stochastic(&tables, &data.images, i, &mut packed_rng),
                deployed.classify(&data.images, i, &mut scalar_rng),
                "sample {i}"
            );
        }
        // Whole-accuracy figures stay seed-matched too.
        let mut scalar_rng = DeviceRng::seed_from_u64(8);
        let mut packed_rng = DeviceRng::seed_from_u64(8);
        assert_eq!(
            packed.accuracy_stochastic(&tables, &data, &mut packed_rng, Some(10)),
            deployed.accuracy(&data, &mut scalar_rng, Some(10)),
        );
    }

    /// In the gray-zone → 0 limit the stochastic engine collapses onto the
    /// digital decision rule (no comparator ties at these thresholds).
    #[test]
    fn zero_width_limit_is_the_digital_engine() {
        let h = hw(8, 8, 2.4, 8);
        let (fan_in, out) = (40, 5);
        let signs = pseudo_signs(fan_in * out, 2);
        let vth: Vec<f64> = (0..out).map(|o| o as f64 * 0.37 + 0.11).collect();
        let m = TiledMatrix::new(&signs, fan_in, out, vth, vec![false; out], &h);
        let packed = PackedTiledMatrix::from_tiled(&m);
        let zero = VariationModel::new(0.0, 0.0, 0.0).unwrap();
        let tables = packed.stochastic_tables(&zero);
        let mut rng = DeviceRng::seed_from_u64(5);
        for salt in 0..8 {
            let input: Vec<Bit> = (0..fan_in)
                .map(|i| Bit::from_bool((i * 5 + salt * 11) % 4 < 2))
                .collect();
            let plane = packed.forward_stochastic(&tables, &BitPlane::from_bits(&input), &mut rng);
            assert_eq!(plane.to_bits(), m.forward_digital(&input), "salt {salt}");
        }
        // Fully saturated tables never touch the RNG.
        let mut untouched = DeviceRng::seed_from_u64(5);
        assert_eq!(rng.gen::<u64>(), untouched.gen::<u64>());
    }

    /// Variation threading: drifting the scalar model's operating
    /// conditions equals parameterizing the packed tables — seed-matched.
    #[test]
    fn variation_tables_match_varied_scalar_model() {
        let h = hw(16, 8, 2.4, 16);
        let spec = NetSpec::mlp(&[1, 16, 16], &[16], 10);
        let model = spec.build_software(&h, 11);
        let vm = VariationModel::new(2.0, -0.15, 5.0).unwrap();
        let mut varied = deploy(&spec, &model, &h).unwrap();
        let packed = varied.to_packed();
        varied.apply_variation(&vm);
        let tables = packed.stochastic_tables(&vm);
        let data = bnn_datasets::digits::generate_digits(&bnn_datasets::SynthConfig {
            samples_per_class: 1,
            ..Default::default()
        });
        let mut scalar_rng = DeviceRng::seed_from_u64(21);
        let mut packed_rng = DeviceRng::seed_from_u64(21);
        for i in 0..data.len() {
            assert_eq!(
                packed.classify_stochastic(&tables, &data.images, i, &mut packed_rng),
                varied.classify(&data.images, i, &mut scalar_rng),
                "sample {i}"
            );
        }
    }
}
