//! The packed stochastic engine: the full SC datapath evaluated on
//! bitplanes, flip-for-flip compatible with the scalar reference.
//!
//! [`DeployedModel::classify`](super::DeployedModel::classify) simulates
//! the stochastic datapath one element at a time: per output pixel, per
//! crossbar tile, per column it computes the merged current, evaluates the
//! erf-shaped gray-zone law, draws an `L`-bit observation window and feeds
//! the streams through the APC accumulator. That fidelity is exactly what
//! variation-aware robustness sweeps need — and far too slow to run at
//! Monte Carlo scale. This module is the word-parallel twin on the
//! [`PackedLayer`] pipeline IR, built from three pieces:
//!
//! 1. **Packed tile sums** — per-tile XNOR match counts come from the same
//!    SWAR `lane_counts` reduction and masked-popcount spans the digital
//!    engine votes with ([`PackedTiledMatrix::matches_into`]), instead of
//!    per-element multiply loops.
//! 2. **Flip-probability tables** — every `(tile, column)` cell's
//!    gray-zone law is evaluated **once per operating condition** over all
//!    integer sums it can produce, quantized into Bernoulli draw
//!    thresholds ([`aqfp_sc::bitplane::bernoulli_threshold`]). Per-trial
//!    [`VariationModel`] state (gray-zone width scale, attenuation delta,
//!    temperature drift) enters here: the tables are built from the
//!    *effective* width and unit currents while the programmed thresholds
//!    stay at their calibration-time values.
//! 3. **Packed Bernoulli streams** — each cell's `L`-cycle observation
//!    window is sampled as a word mask
//!    ([`aqfp_sc::bitplane::sample_bernoulli_words`]); APC accumulation
//!    reduces to popcounts over the masks (exact counter) or a
//!    cycle-transposed walk of the same masks (approximate counter).
//!
//! # One semantics, shared with the scalar reference
//!
//! The engine consumes the RNG in **exactly** the scalar order (pixel →
//! column group → row tile → column → cycle), draws one `u64` per
//! unsaturated cycle bit, and skips draws for saturated probabilities
//! precisely where `AqfpBuffer::observe` does. The integer-threshold
//! comparison is bit-equivalent to the scalar `gen::<f64>() < p` (see
//! [`bernoulli_threshold`]), so
//! **same seed ⇒ same per-element flip decisions ⇒ identical
//! classifications** — enforced by seed-matched differential proptests
//! over ragged geometries (`tests/props.rs`). The speedup comes from
//! everything around the draws: popcounted tile sums, table lookups
//! instead of per-element erf evaluations, mask words instead of
//! per-cycle `Vec<Bit>` allocations (see `BENCH_stochastic.json`).
//!
//! In the gray-zone → 0 limit (`VariationModel` width scale 0) every
//! table entry saturates and the engine degenerates to the digital
//! decision rule away from exact comparator ties.
//!
//! # The counter mode
//!
//! Seed-matched draw order is the engine's licence to exist as a
//! *reference* — and its throughput bound: one serial `next_u64` chain
//! per draw, regardless of datapath width. [`RngMode::Counter`] trades
//! the draw-for-draw pairing (never the *statistics*) for a keyed
//! counter stream ([`aqfp_sc::CounterStream`]): every Bernoulli window is
//! a pure function of its `(trial seed, sample, stage, pixel, cell)`
//! coordinates, generated independently, in any order, on any worker
//! count — bit-reproducible by construction. Dead columns pin their
//! window's threshold directly (there is no draw alignment to preserve),
//! and the per-cell threshold gather walks cells in natural
//! channel-major order instead of the frozen scalar draw order.
//!
//! The counter decision law is byte-wide rather than the scalar
//! `f64`-wide comparison: each mixed word yields **eight** 8-bit lanes,
//! and lane `< round(p·2⁸)` fires the bit (see
//! [`aqfp_sc::CounterStream::bernoulli_word`]). Probabilities quantize to
//! 1/256 — at SC window lengths (`L = 16`) that quantization is far
//! inside the sampling noise, and the payoff is an 8× draw-rate win plus
//! a branch-free SWAR byte-compare counter. A whole batch of windows
//! lives on one flat decision tape (window `i` starts at draw-aligned bit
//! `i · ⌈L/8⌉·8`), so the fused exact-counter path batch-counts every
//! unsaturated cell of a matrix in a single vectorizable sweep
//! ([`aqfp_sc::CounterStream::bernoulli_windows_counts`]) after a
//! branchless scan splits cells into saturated constants (prefix/suffix
//! cutoffs precomputed per sub-table in [`MatrixStochasticTables`]) and a
//! compacted live list. The two RNG modes agree statistically (enforced
//! by distribution-tolerance tests), just not flip-for-flip.

use super::model::argmax;
use super::packed::PackedTiledMatrix;
use super::pipeline::{PackedConvStage, PackedLayer};
use super::{BitMap, PackedModel};
use aqfp_device::{Bit, GrayZone, VariationModel};
use aqfp_sc::accumulate::CounterKind;
use aqfp_sc::bitplane::{
    bernoulli_threshold, packed_im2col, sample_bernoulli_planes, sample_bernoulli_words,
    BERNOULLI_ALWAYS, BERNOULLI_NEVER,
};
use aqfp_sc::counter::{counter_always, counter_never};
use aqfp_sc::{Apc, BitPlane, CounterStream, PackedMatrix};
use bnn_nn::Tensor;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Selects how the stochastic engine draws its Bernoulli observation
/// windows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RngMode {
    /// One shared serial generator consumed in the exact scalar draw
    /// order — flip-for-flip identical to `DeployedModel::classify` from
    /// the same seed (the differential oracle), throughput-bounded by the
    /// serial `next_u64` chain.
    #[default]
    SeedMatched,
    /// Keyed counter streams ([`aqfp_sc::CounterStream`]): each draw is a
    /// pure function of its coordinates, so windows generate independently
    /// and results are bit-reproducible across evaluation order and
    /// worker count. Statistically equivalent to [`RngMode::SeedMatched`]
    /// (same quantized Bernoulli laws), not draw-for-draw identical.
    Counter,
}

/// The per-cell Bernoulli draw thresholds of one [`PackedTiledMatrix`] at
/// one operating condition, indexed by XNOR match count: entry
/// `(channel, tile, matches)` is the quantized probability that the
/// tile's neuron reads '1' for that integer sum, with the draw-free
/// sentinels of [`aqfp_sc::bitplane::bernoulli_threshold`] marking
/// saturated cells. Built by [`PackedTiledMatrix::stochastic_tables`].
#[derive(Debug, Clone)]
pub struct MatrixStochasticTables {
    /// `[out × stride]` channel-major thresholds; a channel's slice is
    /// indexed `base[r] + matches`.
    thr: Vec<u64>,
    /// `k + 1` prefix offsets (tile `r`'s sub-table spans
    /// `base[r]..base[r] + tile_rows(r) + 1`; `base[k]` is the entries
    /// per channel — the `thr` channel stride).
    base: Vec<usize>,
    /// Output channels the tables were built for.
    out: usize,
    /// Cell indices `channel·k + tile` in scalar RNG draw order (column
    /// groups outer, then row tiles, then columns) — the iteration order
    /// of the plane-at-a-time sampling batch.
    order: Vec<u32>,
    /// Draw-order-aligned start offsets of each cell's sub-table in
    /// `thr` (`channel·stride + base[tile]`).
    toff: Vec<u32>,
    /// `[out × k]` channel-major per-cell saturation cutoffs, packed
    /// `lo | hi << 16`: match counts below `lo` read a draw-free constant
    /// '0' (that whole sub-table prefix is [`BERNOULLI_NEVER`]) and counts
    /// at or above `hi` read a draw-free '1'. The fused counter path
    /// resolves saturated cells from these two compares alone, without a
    /// dependent load into the (much larger) threshold table.
    sat: Vec<u32>,
}

impl MatrixStochasticTables {
    fn build(m: &PackedTiledMatrix, vm: &VariationModel) -> Self {
        let k = m.row_tiles();
        // The one shared definition of how variation lands on operating
        // conditions — the same call the scalar drift path makes, so both
        // engines evaluate the identical effective law.
        let varied = aqfp_crossbar::array::CrossbarConfig {
            grayzone_ua: m.grayzone_ua(),
            attenuation: *m.attenuation(),
        }
        .with_variation(vm);
        let width = varied.grayzone_ua;
        let attenuation = varied.attenuation;
        let mut base = Vec::with_capacity(k + 1);
        let mut stride = 0usize;
        for r in 0..k {
            base.push(stride);
            stride += m.tile_rows(r) + 1;
        }
        base.push(stride);
        let mut thr = Vec::with_capacity(m.out() * stride);
        for c in 0..m.out() {
            for r in 0..k {
                let rows = m.tile_rows(r);
                // The drifted unit current and gray-zone width; the
                // programmed threshold stays where calibration put it —
                // evaluating exactly the law the (varied) scalar crossbar
                // senses with, so probabilities agree bit-for-bit.
                let i1 = attenuation.i1_ua(rows);
                let th = m.threshold_ua(c, r);
                let law = if width > 0.0 {
                    GrayZone::new(th, width)
                } else {
                    GrayZone::deterministic(th)
                };
                for matches in 0..=rows {
                    let sum = 2 * matches as i64 - rows as i64;
                    thr.push(bernoulli_threshold(law.probability_one(sum as f64 * i1)));
                }
            }
        }
        // Scalar draw order, frozen once: the evaluation loop walks cells
        // through these two arrays instead of re-deriving the group
        // nesting per pixel.
        let groups = m.col_group_starts();
        let mut order = Vec::with_capacity(m.out() * k);
        let mut toff = Vec::with_capacity(m.out() * k);
        for g in 0..groups.len() - 1 {
            for (r, &b) in base[..k].iter().enumerate() {
                for c in groups[g]..groups[g + 1] {
                    order.push((c * k + r) as u32);
                    toff.push((c * stride + b) as u32);
                }
            }
        }
        // Saturation cutoffs under the *counter* law: the gray-zone law is
        // monotone in the match count, so each cell's sub-table is a
        // never-fires prefix, a live band, and an always-fires suffix —
        // record the two band edges. The predicates are the 16-bit
        // quantized ones ([`counter_never`]/[`counter_always`]), which
        // also classify deep-tail probabilities (`0 < p < 2⁻¹⁷` and its
        // mirror) as certainly-constant: skipping their draws reproduces
        // the counter sampler's output bit-for-bit, because no 16-bit lane
        // can land below (resp. at or above) such a threshold. Only the
        // fused counter path reads these; the seed-matched oracle must
        // still draw its tails. (Computed from the table itself, so a
        // non-monotone law would only cost performance, never
        // correctness.)
        let mut sat = Vec::with_capacity(m.out() * k);
        for c in 0..m.out() {
            for r in 0..k {
                let row = &thr[c * stride + base[r]..][..m.tile_rows(r) + 1];
                let lo = row.iter().take_while(|&&t| counter_never(t)).count();
                let hi = row.len() - row.iter().rev().take_while(|&&t| counter_always(t)).count();
                sat.push(lo as u32 | (hi as u32) << 16);
            }
        }
        Self {
            thr,
            base,
            out: m.out(),
            order,
            toff,
            sat,
        }
    }

    fn check(&self, m: &PackedTiledMatrix) {
        let tiles_match = self.base.len() == m.row_tiles() + 1
            && (0..m.row_tiles()).all(|r| self.base[r + 1] - self.base[r] == m.tile_rows(r) + 1);
        assert!(
            self.out == m.out() && tiles_match,
            "stochastic tables were built for a different matrix geometry"
        );
    }
}

/// Reusable per-evaluation buffers of the stochastic engine (tile match
/// counts, packed observation streams, the APC's cycle word).
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    matches: Vec<u32>,
    streams: Vec<u64>,
    word: Vec<Bit>,
    cur: Vec<u64>,
    thrs: Vec<u64>,
    offs: Vec<usize>,
    counts: Vec<u32>,
    totals: Vec<u64>,
    starts: Vec<u32>,
}

/// Evaluates one packed activation word slice through the stochastic
/// datapath of `m`, reporting each channel's output bit through `sink`.
///
/// RNG consumption follows the scalar engine exactly: column groups in
/// plan order, row tiles within a group, columns within a tile, cycles
/// within a window; saturated cells and draw-free sentinels consume
/// nothing. Dead columns draw their (discarded) stream like the scalar
/// path, then read constant.
///
/// Callers must have validated `tables` against `m` with
/// [`MatrixStochasticTables::check`] — hoisted out of this (per-pixel)
/// hot path to the per-stage entry points.
fn eval_channels<R: Rng + ?Sized>(
    m: &PackedTiledMatrix,
    tables: &MatrixStochasticTables,
    acts: &[u64],
    rng: &mut R,
    scratch: &mut Scratch,
    sink: impl FnMut(usize, bool),
) {
    let k = m.row_tiles();
    let out = m.out();
    let window = m.window();
    let stream_words = window.div_ceil(64);

    scratch.matches.resize(out * k, 0);
    m.matches_into(acts, &mut scratch.matches);
    scratch.streams.resize(out * k * stream_words, 0);

    // RNG pass: gather every cell's Bernoulli threshold (selected by its
    // match count) in scalar draw order, then sample all observation
    // windows in one plane-at-a-time batch. The sampler walks the cells
    // in the given order consuming the RNG exactly like per-cell calls
    // would, but the draw loop stays tight across the whole matrix.
    scratch.thrs.clear();
    scratch.offs.clear();
    for (&idx, &toff) in tables.order.iter().zip(&tables.toff) {
        scratch
            .thrs
            .push(tables.thr[toff as usize + scratch.matches[idx as usize] as usize]);
        scratch.offs.push(idx as usize * stream_words);
    }
    sample_bernoulli_planes(
        &scratch.thrs,
        &scratch.offs,
        window,
        &mut scratch.streams,
        rng,
    );
    // Dead columns: the die's neuron drew its (discarded) window above —
    // the RNG stream must stay aligned with the scalar engine — but the
    // stuck output reads a constant (the pin sentinels consume no draws).
    for c in 0..out {
        for r in 0..k {
            if let Some(b) = m.dead_override(c, r) {
                let idx = c * k + r;
                let slot = &mut scratch.streams[idx * stream_words..(idx + 1) * stream_words];
                let pin = if b.as_bool() {
                    BERNOULLI_ALWAYS
                } else {
                    BERNOULLI_NEVER
                };
                sample_bernoulli_words(pin, window, slot, rng);
            }
        }
    }

    accumulate_windows(m, scratch, sink);
}

/// Evaluates one packed activation word slice through the stochastic
/// datapath of `m` in **counter mode**: every cell's observation window
/// lives on `stream`'s flat decision tape at window index
/// `channel·k + tile` (see
/// [`aqfp_sc::CounterStream::sample_bernoulli_planes`]), so the windows
/// are pure functions of their coordinates — no draw order, no serial
/// chain. Dead columns pin their threshold to the stuck constant directly;
/// unlike the seed-matched path there is no discarded draw to keep a
/// shared stream aligned.
fn eval_channels_ctr(
    m: &PackedTiledMatrix,
    tables: &MatrixStochasticTables,
    acts: &[u64],
    stream: &CounterStream,
    scratch: &mut Scratch,
    mut sink: impl FnMut(usize, bool),
) {
    let k = m.row_tiles();
    let out = m.out();
    let window = m.window();
    let stream_words = window.div_ceil(64);

    scratch.matches.resize(out * k, 0);
    m.matches_into(acts, &mut scratch.matches);

    let stride = tables.base[k];
    // The threshold of cell `(c, r)` in natural channel-major cell order:
    // window `i` of the batch IS cell `i = channel·k + tile`, so the
    // cell's tape position is the cell index times the window stride. A
    // dead column pins the window at the source (counter draws are
    // free-standing, so nothing needs to stay aligned with a discarded
    // draw).
    let cell_thr = |c: usize, r: usize, matches: u32| match m.dead_override(c, r) {
        Some(b) => {
            if b.as_bool() {
                BERNOULLI_ALWAYS
            } else {
                BERNOULLI_NEVER
            }
        }
        None => tables.thr[c * stride + tables.base[r] + matches as usize],
    };

    if matches!(m.counter(), CounterKind::Exact) {
        // Fused gather → sample → accumulate: the exact APC only consumes
        // each window's popcount, so saturated cells contribute their
        // constant for free and live windows are counted straight out of
        // the generator — no stream buffer, no second pass.
        //
        // Three phases. Phase one is a fully branchless scan of all
        // cells: saturated contributions accumulate per channel by
        // masked add, and live cells compact into one dense matrix-wide
        // (threshold, window index) list by the
        // store-always/advance-conditionally idiom — keeping the
        // generator call OUT of this loop is what lets it stay a handful
        // of straight-line ops per cell (a conditional call in the scan
        // costs several times the whole scan, even when never taken).
        // Phase two hands the whole live list to the sentinel-free batch
        // counter in one call, so the generator runs over thousands of
        // independent windows back to back and vectorizes. Phase three
        // folds each channel's live counts into its saturated total and
        // votes. No per-cell branch anywhere, so the mixed
        // live/saturated cell pattern of a mid-gray-zone workload cannot
        // mispredict.
        let half = (k * window) as u64;
        let dead = m.dead_cells();
        let base = &tables.base[..k];
        scratch.thrs.resize(out * k, 0);
        scratch.offs.resize(out * k, 0);
        scratch.counts.resize(out * k, 0);
        scratch.totals.resize(out, 0);
        scratch.starts.resize(out + 1, 0);
        let mut live = 0usize;
        for c in 0..out {
            scratch.starts[c] = live as u32;
            let mrow = &scratch.matches[c * k..][..k];
            let drow = &dead[c * k..][..k];
            let srow = &tables.sat[c * k..][..k];
            let trow = &tables.thr[c * stride..][..stride];
            let mut total = 0u64;
            for r in 0..k {
                let matches = mrow[r];
                let (d, s) = (drow[r], srow[r]);
                let (lo, hi) = (s & 0xFFFF, s >> 16);
                let one = (d == 2) | ((d == 0) & (matches >= hi));
                total += one as u64 * window as u64;
                // The threshold load is unconditional (always in range:
                // matches ≤ tile_rows(r)), as is the compaction store —
                // only the cursor advance depends on liveness.
                scratch.thrs[live] = trow[base[r] + matches as usize];
                scratch.offs[live] = c * k + r;
                live += ((d == 0) & (matches >= lo) & (matches < hi)) as usize;
            }
            scratch.totals[c] = total;
        }
        scratch.starts[out] = live as u32;
        stream.bernoulli_windows_counts(
            &scratch.thrs[..live],
            &scratch.offs[..live],
            window,
            &mut scratch.counts[..live],
        );
        for (c, &flip) in m.flips().iter().enumerate() {
            let (s, e) = (scratch.starts[c] as usize, scratch.starts[c + 1] as usize);
            let drawn: u64 = scratch.counts[s..e].iter().map(|&x| u64::from(x)).sum();
            sink(c, (2 * (scratch.totals[c] + drawn) >= half) != flip);
        }
        return;
    }

    // Approximate APC: its counting error depends on the bit pattern
    // *across* tiles per cycle, so materialize every window and let the
    // shared accumulation transpose them.
    scratch.streams.resize(out * k * stream_words, 0);
    scratch.thrs.clear();
    scratch.offs.clear();
    for c in 0..out {
        for r in 0..k {
            let idx = c * k + r;
            scratch.thrs.push(cell_thr(c, r, scratch.matches[idx]));
            scratch.offs.push(idx * stream_words);
        }
    }
    stream.sample_bernoulli_planes(&scratch.thrs, &scratch.offs, window, &mut scratch.streams);
    accumulate_windows(m, scratch, sink);
}

/// APC accumulation + midpoint comparator (ties to '1') over the sampled
/// observation windows in `scratch.streams`, per channel — shared by the
/// seed-matched and counter sampling front-ends.
fn accumulate_windows(
    m: &PackedTiledMatrix,
    scratch: &mut Scratch,
    mut sink: impl FnMut(usize, bool),
) {
    let k = m.row_tiles();
    let out = m.out();
    let window = m.window();
    let stream_words = window.div_ceil(64);
    let half = (k * window) as u64; // doubled threshold, like the scalar module
    match m.counter() {
        CounterKind::Exact => {
            for c in 0..out {
                let total: u64 = scratch.streams[c * k * stream_words..(c + 1) * k * stream_words]
                    .iter()
                    .map(|w| w.count_ones() as u64)
                    .sum();
                sink(c, (2 * total >= half) != m.flips()[c]);
            }
        }
        CounterKind::Approximate => {
            // The approximate APC's counting error depends on the bit
            // pattern *across* tiles per cycle, so transpose the packed
            // streams back into cycle words and mirror the scalar count.
            let apc = Apc::new(k);
            scratch.word.resize(k, Bit::Zero);
            for c in 0..out {
                let mut total = 0u64;
                for t in 0..window {
                    for r in 0..k {
                        let w = scratch.streams[(c * k + r) * stream_words + t / 64];
                        scratch.word[r] = Bit::from_bool((w >> (t % 64)) & 1 == 1);
                    }
                    total += apc.count_approx(&scratch.word) as u64;
                }
                sink(c, (2 * total >= half) != m.flips()[c]);
            }
        }
    }
}

impl PackedTiledMatrix {
    /// Precomputes the stochastic engine's flip-probability tables for one
    /// operating condition: for every `(row tile, channel)` cell and every
    /// XNOR match count it can produce, the gray-zone probability of the
    /// merged current (at the variation's effective gray-zone width and
    /// drifted unit currents, against the *programmed* threshold) is
    /// quantized into a Bernoulli draw threshold. Faults never invalidate
    /// the tables — stuck cells only move which entry is looked up, and
    /// dead columns are handled at evaluation time — so one table set
    /// serves every trial of a Monte Carlo campaign at the same operating
    /// condition.
    pub fn stochastic_tables(&self, vm: &VariationModel) -> MatrixStochasticTables {
        MatrixStochasticTables::build(self, vm)
    }

    /// Evaluates all output channels for one packed activation plane
    /// through the **stochastic** datapath — the word-parallel counterpart
    /// of `TiledMatrix::forward`, seed-matched flip for flip.
    ///
    /// # Panics
    /// Panics if `act.len() != fan_in()` or `tables` was built for a
    /// different geometry.
    pub fn forward_stochastic<R: Rng + ?Sized>(
        &self,
        tables: &MatrixStochasticTables,
        act: &BitPlane,
        rng: &mut R,
    ) -> BitPlane {
        assert_eq!(act.len(), self.fan_in(), "input length mismatch");
        tables.check(self);
        let mut out = BitPlane::zeros(self.out());
        let mut scratch = Scratch::default();
        eval_channels(self, tables, act.words(), rng, &mut scratch, |c, bit| {
            if bit {
                out.set(c, true);
            }
        });
        out
    }

    /// Counter-mode twin of [`PackedTiledMatrix::forward_stochastic`]:
    /// every cell's observation window is drawn from a child of `stream`
    /// keyed by the cell index, so the result is a pure function of
    /// `(stream, activations)` — order-free and replay-stable. Same
    /// quantized Bernoulli laws as the seed-matched path, not the same
    /// flips.
    ///
    /// # Panics
    /// Panics if `act.len() != fan_in()` or `tables` was built for a
    /// different geometry.
    pub fn forward_stochastic_ctr(
        &self,
        tables: &MatrixStochasticTables,
        act: &BitPlane,
        stream: &CounterStream,
    ) -> BitPlane {
        assert_eq!(act.len(), self.fan_in(), "input length mismatch");
        tables.check(self);
        let mut out = BitPlane::zeros(self.out());
        let mut scratch = Scratch::default();
        eval_channels_ctr(self, tables, act.words(), stream, &mut scratch, |c, bit| {
            if bit {
                out.set(c, true);
            }
        });
        out
    }
}

/// The precomputed per-stage flip-probability tables of a
/// [`PackedModel`]'s stochastic mode — one operating condition
/// ([`VariationModel`]) captured once, shared by every evaluation (and
/// every fault-injected clone) at that condition.
#[derive(Debug, Clone)]
pub struct StochasticTables {
    /// Aligned with `PackedModel::layers`: `Some` for weighted stages.
    stages: Vec<Option<MatrixStochasticTables>>,
    /// The operating condition the tables were built for.
    variation: VariationModel,
    /// The RNG discipline the tables were built for; entry points assert
    /// it matches so seed-matched oracles and counter campaigns can't be
    /// silently mixed.
    mode: RngMode,
}

impl StochasticTables {
    /// The operating condition the tables were built for.
    pub fn variation(&self) -> &VariationModel {
        &self.variation
    }

    /// The RNG discipline the tables were built for.
    pub fn mode(&self) -> RngMode {
        self.mode
    }

    fn check_mode(&self, want: RngMode) {
        assert_eq!(
            self.mode, want,
            "stochastic tables were built for {:?}, evaluated as {:?}",
            self.mode, want
        );
    }
}

/// The sampling-agnostic conv scaffold: the word-level im2col gather of
/// the digital path, then `eval` (one of the two sampling front-ends) per
/// output pixel in scalar (row-major) pixel order, output bits assembled
/// as whole words. `eval` receives the pixel's packed activation words,
/// the pixel index, the scratch buffers, and the per-channel output-bit
/// accumulator: it must OR each channel's bit into `cur[channel]` at bit
/// position `pixel % 64` (a static contract rather than a boxed sink, so
/// the per-channel store stays a direct monomorphized write).
fn conv_forward_stochastic_with(
    stage: &PackedConvStage,
    input: &BitPlane,
    shape: [usize; 3],
    scratch: &mut Scratch,
    mut eval: impl FnMut(&[u64], usize, &mut Scratch, &mut [u64]),
) -> (BitPlane, [usize; 3]) {
    let [c, h, w] = shape;
    assert_eq!(input.len(), c * h * w, "plane/shape mismatch");
    let out_shape = stage.out_shape(shape);
    let (_, k, stride, pad) = stage.geometry();
    let fields = packed_im2col(input, c, h, w, k, stride, pad, false);
    let m = stage.matrix();
    let n = fields.rows();
    let fw = fields.words_per_row();
    let storage = fields.storage();
    let mut out = PackedMatrix::zeros(m.out(), n);
    scratch.cur.clear();
    scratch.cur.resize(m.out(), 0);
    let mut cur = std::mem::take(&mut scratch.cur);
    for a in 0..n {
        let acts = &storage[a * fw..(a + 1) * fw];
        eval(acts, a, scratch, &mut cur);
        if a % 64 == 63 {
            for (ch, word) in cur.iter_mut().enumerate() {
                out.row_words_mut(ch)[a / 64] = *word;
                *word = 0;
            }
        }
    }
    if !n.is_multiple_of(64) {
        for (ch, word) in cur.iter_mut().enumerate() {
            out.row_words_mut(ch)[n / 64] = *word;
        }
    }
    scratch.cur = cur;
    (out.concat_rows(), out_shape)
}

/// Runs one conv stage stochastically in seed-matched order: pixels
/// row-major, each drawing from the one shared serial generator.
fn conv_forward_stochastic<R: Rng + ?Sized>(
    stage: &PackedConvStage,
    tables: &MatrixStochasticTables,
    input: &BitPlane,
    shape: [usize; 3],
    rng: &mut R,
    scratch: &mut Scratch,
) -> (BitPlane, [usize; 3]) {
    let m = stage.matrix();
    tables.check(m);
    conv_forward_stochastic_with(stage, input, shape, scratch, |acts, a, scratch, cur| {
        eval_channels(m, tables, acts, rng, scratch, |ch, bit| {
            cur[ch] |= (bit as u64) << (a % 64);
        })
    })
}

/// Runs one conv stage stochastically in counter mode: each output pixel
/// draws from its own child stream (`stage_stream.derive(pixel)`), so the
/// stage's flips are pure functions of their coordinates.
fn conv_forward_stochastic_ctr(
    stage: &PackedConvStage,
    tables: &MatrixStochasticTables,
    input: &BitPlane,
    shape: [usize; 3],
    stage_stream: &CounterStream,
    scratch: &mut Scratch,
) -> (BitPlane, [usize; 3]) {
    let m = stage.matrix();
    tables.check(m);
    conv_forward_stochastic_with(stage, input, shape, scratch, |acts, a, scratch, cur| {
        let pixel = stage_stream.derive(a as u64);
        eval_channels_ctr(m, tables, acts, &pixel, scratch, |ch, bit| {
            cur[ch] |= (bit as u64) << (a % 64);
        })
    })
}

impl PackedModel {
    /// Precomputes the stochastic mode's flip-probability tables for one
    /// operating condition (see
    /// [`PackedTiledMatrix::stochastic_tables`]): every weighted pipeline
    /// stage gets its per-cell Bernoulli thresholds at the variation's
    /// effective gray-zone width and drifted unit currents. Build once per
    /// condition; the tables are valid for every fault-injected clone of
    /// this model, which is what lets a variation × fault-rate campaign
    /// share them across trials.
    pub fn stochastic_tables(&self, vm: &VariationModel) -> StochasticTables {
        self.stochastic_tables_mode(vm, RngMode::SeedMatched)
    }

    /// [`PackedModel::stochastic_tables`] with an explicit [`RngMode`]
    /// tag. The per-cell thresholds are identical in both modes — the tag
    /// records which sampling discipline the campaign will evaluate under
    /// so entry points can reject a mode mismatch.
    pub fn stochastic_tables_mode(&self, vm: &VariationModel, mode: RngMode) -> StochasticTables {
        StochasticTables {
            stages: self
                .layers()
                .iter()
                .map(|layer| match layer {
                    PackedLayer::Conv(c) => Some(c.matrix().stochastic_tables(vm)),
                    PackedLayer::Linear(l) => Some(l.matrix().stochastic_tables(vm)),
                    PackedLayer::Pool(_) | PackedLayer::Flatten => None,
                })
                .collect(),
            variation: *vm,
            mode,
        }
    }

    /// Classifies one packed `[C, H, W]` plane through the **stochastic**
    /// datapath: weighted stages run the packed SC simulation (gray-zone
    /// flips, observation windows, APC accumulation), pool/flatten stages
    /// and the classifier head are deterministic exactly as in the scalar
    /// engine. Seed-matched with
    /// [`DeployedModel::classify`](super::DeployedModel::classify): the
    /// same RNG state produces the same label and scores.
    pub fn classify_stochastic_plane<R: Rng + ?Sized>(
        &self,
        tables: &StochasticTables,
        plane: &BitPlane,
        rng: &mut R,
    ) -> (usize, Vec<f32>) {
        let mut scratch = Scratch::default();
        self.classify_plane_stochastic_with(tables, plane.clone(), rng, &mut scratch)
    }

    /// Classifies sample `n` of an image batch through the stochastic
    /// datapath; returns `(label, scores)`. See
    /// [`PackedModel::classify_stochastic_plane`].
    pub fn classify_stochastic<R: Rng + ?Sized>(
        &self,
        tables: &StochasticTables,
        images: &Tensor,
        n: usize,
        rng: &mut R,
    ) -> (usize, Vec<f32>) {
        let map = BitMap::from_tensor_sample(images, n);
        self.classify_stochastic_plane(tables, &map.to_plane(), rng)
    }

    /// Top-1 accuracy of the stochastic engine over (the first `limit`
    /// samples of) a dataset, evaluated sequentially so the RNG
    /// consumption — and therefore every accuracy figure — is seed-matched
    /// with the scalar `DeployedModel::accuracy`.
    pub fn accuracy_stochastic<R: Rng + ?Sized>(
        &self,
        tables: &StochasticTables,
        data: &bnn_datasets::Dataset,
        rng: &mut R,
        limit: Option<usize>,
    ) -> f64 {
        let n = limit.map_or(data.len(), |l| l.min(data.len()));
        assert!(n > 0, "accuracy over zero samples");
        let mut scratch = Scratch::default();
        let mut correct = 0usize;
        for i in 0..n {
            let plane = BitMap::from_tensor_sample(&data.images, i).to_plane();
            let (pred, _) = self.classify_plane_stochastic_with(tables, plane, rng, &mut scratch);
            if pred == data.labels[i] {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }

    /// Top-1 accuracy of the seed-matched stochastic engine over
    /// pre-packed planes: RNG-identical to
    /// [`PackedModel::accuracy_stochastic`] (plane packing consumes no
    /// draws), but the per-sample `BitMap` conversion is hoisted out — the
    /// form Monte Carlo campaigns use to share one packed eval set across
    /// every trial.
    pub fn accuracy_stochastic_planes<R: Rng + ?Sized>(
        &self,
        tables: &StochasticTables,
        planes: &[BitPlane],
        labels: &[usize],
        rng: &mut R,
    ) -> f64 {
        assert_eq!(planes.len(), labels.len(), "planes/labels mismatch");
        assert!(!planes.is_empty(), "accuracy over zero samples");
        let mut scratch = Scratch::default();
        let mut correct = 0usize;
        for (plane, &label) in planes.iter().zip(labels) {
            let (pred, _) =
                self.classify_plane_stochastic_with(tables, plane.clone(), rng, &mut scratch);
            if pred == label {
                correct += 1;
            }
        }
        correct as f64 / planes.len() as f64
    }

    /// Classifies one packed `[C, H, W]` plane through the stochastic
    /// datapath in **counter mode**: every observation window is drawn
    /// from a child of `stream` keyed by `(stage, pixel, cell)`, so the
    /// result is a pure function of `(stream, plane)` — bit-reproducible
    /// regardless of what else has been evaluated, in what order, on how
    /// many workers. Callers give each sample its own stream (see
    /// [`PackedModel::accuracy_stochastic_ctr`] for the convention).
    pub fn classify_stochastic_plane_ctr(
        &self,
        tables: &StochasticTables,
        plane: &BitPlane,
        stream: &CounterStream,
    ) -> (usize, Vec<f32>) {
        let mut scratch = Scratch::default();
        self.classify_plane_stochastic_ctr_with(tables, plane.clone(), stream, &mut scratch)
    }

    /// Classifies sample `n` of an image batch in counter mode; returns
    /// `(label, scores)`. See
    /// [`PackedModel::classify_stochastic_plane_ctr`].
    pub fn classify_stochastic_ctr(
        &self,
        tables: &StochasticTables,
        images: &Tensor,
        n: usize,
        stream: &CounterStream,
    ) -> (usize, Vec<f32>) {
        let map = BitMap::from_tensor_sample(images, n);
        self.classify_stochastic_plane_ctr(tables, &map.to_plane(), stream)
    }

    /// Top-1 accuracy of the counter-mode stochastic engine over (the
    /// first `limit` samples of) a dataset. Sample `i` draws from
    /// `CounterStream::from_seed(seed).derive(i)`, so each figure is a
    /// pure function of `(seed, dataset)`: the samples can be evaluated in
    /// any order, split across any worker count, or re-run individually
    /// and the accuracy is bit-identical.
    pub fn accuracy_stochastic_ctr(
        &self,
        tables: &StochasticTables,
        data: &bnn_datasets::Dataset,
        seed: u64,
        limit: Option<usize>,
    ) -> f64 {
        let n = limit.map_or(data.len(), |l| l.min(data.len()));
        assert!(n > 0, "accuracy over zero samples");
        let root = CounterStream::from_seed(seed);
        let mut scratch = Scratch::default();
        let mut correct = 0usize;
        for i in 0..n {
            let plane = BitMap::from_tensor_sample(&data.images, i).to_plane();
            let (pred, _) = self.classify_plane_stochastic_ctr_with(
                tables,
                plane,
                &root.derive(i as u64),
                &mut scratch,
            );
            if pred == data.labels[i] {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }

    /// Counter-mode twin of [`PackedModel::accuracy_stochastic_planes`]:
    /// plane `i` draws from `CounterStream::from_seed(seed).derive(i)` —
    /// the same per-sample streams as
    /// [`PackedModel::accuracy_stochastic_ctr`] over the packed dataset.
    pub fn accuracy_stochastic_planes_ctr(
        &self,
        tables: &StochasticTables,
        planes: &[BitPlane],
        labels: &[usize],
        seed: u64,
    ) -> f64 {
        assert_eq!(planes.len(), labels.len(), "planes/labels mismatch");
        assert!(!planes.is_empty(), "accuracy over zero samples");
        let root = CounterStream::from_seed(seed);
        let mut scratch = Scratch::default();
        let mut correct = 0usize;
        for (i, (plane, &label)) in planes.iter().zip(labels).enumerate() {
            let (pred, _) = self.classify_plane_stochastic_ctr_with(
                tables,
                plane.clone(),
                &root.derive(i as u64),
                &mut scratch,
            );
            if pred == label {
                correct += 1;
            }
        }
        correct as f64 / planes.len() as f64
    }

    /// The shared folding loop: scratch buffers persist across calls so
    /// batch evaluation does one allocation set, not one per sample.
    fn classify_plane_stochastic_with<R: Rng + ?Sized>(
        &self,
        tables: &StochasticTables,
        mut act: BitPlane,
        rng: &mut R,
        scratch: &mut Scratch,
    ) -> (usize, Vec<f32>) {
        assert_eq!(
            tables.stages.len(),
            self.layers().len(),
            "stochastic tables were built for a different pipeline"
        );
        tables.check_mode(RngMode::SeedMatched);
        let mut shape = self.input_shape();
        for (layer, tab) in self.layers().iter().zip(&tables.stages) {
            (act, shape) = match (layer, tab) {
                (PackedLayer::Conv(c), Some(t)) => {
                    conv_forward_stochastic(c, t, &act, shape, rng, scratch)
                }
                (PackedLayer::Linear(l), Some(t)) => {
                    let m = l.matrix();
                    t.check(m);
                    let mut out = BitPlane::zeros(m.out());
                    eval_channels(m, t, act.words(), rng, scratch, |ch, bit| {
                        if bit {
                            out.set(ch, true);
                        }
                    });
                    let f = out.len();
                    (out, [f, 1, 1])
                }
                (PackedLayer::Pool(_) | PackedLayer::Flatten, None) => layer.forward(act, shape),
                _ => unreachable!("stochastic tables misaligned with the pipeline"),
            };
        }
        let scores = self.classifier().scores_plane(&act);
        (argmax(&scores), scores)
    }

    /// Counter-mode folding loop: stage `l` (counting every pipeline layer,
    /// weighted or not, so the coordinates survive pipeline refactors that
    /// only touch table alignment) draws from `sample_stream.derive(l)`,
    /// conv pixels from the stage stream's children, linear stages from
    /// child `0`.
    fn classify_plane_stochastic_ctr_with(
        &self,
        tables: &StochasticTables,
        mut act: BitPlane,
        sample_stream: &CounterStream,
        scratch: &mut Scratch,
    ) -> (usize, Vec<f32>) {
        assert_eq!(
            tables.stages.len(),
            self.layers().len(),
            "stochastic tables were built for a different pipeline"
        );
        tables.check_mode(RngMode::Counter);
        let mut shape = self.input_shape();
        for (li, (layer, tab)) in self.layers().iter().zip(&tables.stages).enumerate() {
            (act, shape) = match (layer, tab) {
                (PackedLayer::Conv(c), Some(t)) => {
                    let stage = sample_stream.derive(li as u64);
                    conv_forward_stochastic_ctr(c, t, &act, shape, &stage, scratch)
                }
                (PackedLayer::Linear(l), Some(t)) => {
                    let m = l.matrix();
                    t.check(m);
                    let mut out = BitPlane::zeros(m.out());
                    let pixel = sample_stream.derive(li as u64).derive(0);
                    eval_channels_ctr(m, t, act.words(), &pixel, scratch, |ch, bit| {
                        if bit {
                            out.set(ch, true);
                        }
                    });
                    let f = out.len();
                    (out, [f, 1, 1])
                }
                (PackedLayer::Pool(_) | PackedLayer::Flatten, None) => layer.forward(act, shape),
                _ => unreachable!("stochastic tables misaligned with the pipeline"),
            };
        }
        let scores = self.classifier().scores_plane(&act);
        (argmax(&scores), scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardwareConfig;
    use crate::deploy::{deploy, TiledMatrix};
    use crate::spec::NetSpec;
    use aqfp_crossbar::faults::InjectedFaults;
    use aqfp_device::{DeviceRng, SeedableRng};

    fn hw(rows: usize, cols: usize, grayzone_ua: f64, bitstream_len: usize) -> HardwareConfig {
        HardwareConfig {
            crossbar_rows: rows,
            crossbar_cols: cols,
            grayzone_ua,
            bitstream_len,
            ..Default::default()
        }
    }

    fn pseudo_signs(n: usize, salt: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if (i * 7 + salt * 11 + 3) % 5 < 2 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    /// The core tentpole property at matrix level: same seed, same flips,
    /// same outputs as the scalar stochastic datapath — on a ragged
    /// multi-tile geometry with a wide gray-zone (plenty of unsaturated
    /// cells, so the RNG alignment is actually exercised).
    #[test]
    fn packed_stochastic_is_seed_matched_with_scalar() {
        let h = hw(8, 4, 8.0, 16);
        let (fan_in, out) = (70, 6);
        let signs = pseudo_signs(fan_in * out, 1);
        let vth: Vec<f64> = (0..out).map(|o| o as f64 * 0.3 - 0.7).collect();
        let flips: Vec<bool> = (0..out).map(|o| o % 3 == 0).collect();
        let m = TiledMatrix::new(&signs, fan_in, out, vth, flips, &h);
        let packed = PackedTiledMatrix::from_tiled(&m);
        let tables = packed.stochastic_tables(&VariationModel::nominal());
        let mut scalar_rng = DeviceRng::seed_from_u64(33);
        let mut packed_rng = DeviceRng::seed_from_u64(33);
        for salt in 0..16 {
            let input: Vec<Bit> = (0..fan_in)
                .map(|i| Bit::from_bool((i * 13 + salt * 7) % 3 == 0))
                .collect();
            let scalar = m.forward(&input, &mut scalar_rng);
            let plane =
                packed.forward_stochastic(&tables, &BitPlane::from_bits(&input), &mut packed_rng);
            assert_eq!(plane.to_bits(), scalar, "salt {salt}");
        }
    }

    /// Model level: the packed stochastic engine reproduces
    /// `DeployedModel::classify` — labels and scores — from the same seed.
    #[test]
    fn packed_model_stochastic_matches_scalar_classify() {
        let h = hw(16, 16, 4.0, 8);
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let model = spec.build_software(&h, 3);
        let deployed = deploy(&spec, &model, &h).unwrap();
        let packed = deployed.to_packed();
        let tables = packed.stochastic_tables(&VariationModel::nominal());
        let data = bnn_datasets::digits::generate_digits(&bnn_datasets::SynthConfig {
            samples_per_class: 2,
            ..Default::default()
        });
        let mut scalar_rng = DeviceRng::seed_from_u64(7);
        let mut packed_rng = DeviceRng::seed_from_u64(7);
        for i in 0..data.len() {
            assert_eq!(
                packed.classify_stochastic(&tables, &data.images, i, &mut packed_rng),
                deployed.classify(&data.images, i, &mut scalar_rng),
                "sample {i}"
            );
        }
        // Whole-accuracy figures stay seed-matched too.
        let mut scalar_rng = DeviceRng::seed_from_u64(8);
        let mut packed_rng = DeviceRng::seed_from_u64(8);
        assert_eq!(
            packed.accuracy_stochastic(&tables, &data, &mut packed_rng, Some(10)),
            deployed.accuracy(&data, &mut scalar_rng, Some(10)),
        );
    }

    /// In the gray-zone → 0 limit the stochastic engine collapses onto the
    /// digital decision rule (no comparator ties at these thresholds).
    #[test]
    fn zero_width_limit_is_the_digital_engine() {
        let h = hw(8, 8, 2.4, 8);
        let (fan_in, out) = (40, 5);
        let signs = pseudo_signs(fan_in * out, 2);
        let vth: Vec<f64> = (0..out).map(|o| o as f64 * 0.37 + 0.11).collect();
        let m = TiledMatrix::new(&signs, fan_in, out, vth, vec![false; out], &h);
        let packed = PackedTiledMatrix::from_tiled(&m);
        let zero = VariationModel::new(0.0, 0.0, 0.0).unwrap();
        let tables = packed.stochastic_tables(&zero);
        let mut rng = DeviceRng::seed_from_u64(5);
        for salt in 0..8 {
            let input: Vec<Bit> = (0..fan_in)
                .map(|i| Bit::from_bool((i * 5 + salt * 11) % 4 < 2))
                .collect();
            let plane = packed.forward_stochastic(&tables, &BitPlane::from_bits(&input), &mut rng);
            assert_eq!(plane.to_bits(), m.forward_digital(&input), "salt {salt}");
        }
        // Fully saturated tables never touch the RNG.
        let mut untouched = DeviceRng::seed_from_u64(5);
        assert_eq!(rng.gen::<u64>(), untouched.gen::<u64>());
    }

    /// Counter mode's tentpole property: every classification is a pure
    /// function of its `(seed, sample)` coordinates — replaying a sample
    /// or walking the batch in reverse order reproduces bit-identical
    /// labels and scores, and the plane-batch accuracy equals the direct
    /// dataset walk.
    #[test]
    fn counter_mode_is_pure_and_order_free() {
        let h = hw(16, 16, 4.0, 8);
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let model = spec.build_software(&h, 3);
        let packed = deploy(&spec, &model, &h).unwrap().to_packed();
        let tables = packed.stochastic_tables_mode(&VariationModel::nominal(), RngMode::Counter);
        assert_eq!(tables.mode(), RngMode::Counter);
        let data = bnn_datasets::digits::generate_digits(&bnn_datasets::SynthConfig {
            samples_per_class: 2,
            ..Default::default()
        });
        let root = CounterStream::from_seed(99);
        let forward: Vec<_> = (0..data.len())
            .map(|i| {
                packed.classify_stochastic_ctr(&tables, &data.images, i, &root.derive(i as u64))
            })
            .collect();
        for i in (0..data.len()).rev() {
            assert_eq!(
                packed.classify_stochastic_ctr(&tables, &data.images, i, &root.derive(i as u64)),
                forward[i],
                "sample {i}"
            );
        }
        let planes: Vec<BitPlane> = (0..data.len())
            .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
            .collect();
        assert_eq!(
            packed.accuracy_stochastic_planes_ctr(&tables, &planes, &data.labels, 99),
            packed.accuracy_stochastic_ctr(&tables, &data, 99, None),
        );
    }

    /// Statistical equivalence at matrix level: over many trials on a wide
    /// gray-zone, each channel's empirical one-rate under counter streams
    /// tracks the seed-matched rate (same quantized Bernoulli laws; the
    /// draws differ, the distribution must not).
    #[test]
    fn counter_mode_matches_seed_matched_statistics() {
        let h = hw(8, 4, 8.0, 16);
        let (fan_in, out) = (70, 6);
        let signs = pseudo_signs(fan_in * out, 1);
        let vth: Vec<f64> = (0..out).map(|o| o as f64 * 0.3 - 0.7).collect();
        let flips: Vec<bool> = (0..out).map(|o| o % 3 == 0).collect();
        let m = TiledMatrix::new(&signs, fan_in, out, vth, flips, &h);
        let packed = PackedTiledMatrix::from_tiled(&m);
        let tables = packed.stochastic_tables(&VariationModel::nominal());
        let input: Vec<Bit> = (0..fan_in)
            .map(|i| Bit::from_bool((i * 13 + 7) % 3 == 0))
            .collect();
        let plane = BitPlane::from_bits(&input);
        let trials = 400usize;
        let mut sm = vec![0u32; out];
        let mut rng = DeviceRng::seed_from_u64(17);
        for _ in 0..trials {
            for (c, b) in packed
                .forward_stochastic(&tables, &plane, &mut rng)
                .to_bits()
                .iter()
                .enumerate()
            {
                sm[c] += b.as_bool() as u32;
            }
        }
        let mut ct = vec![0u32; out];
        let root = CounterStream::from_seed(17);
        for t in 0..trials {
            for (c, b) in packed
                .forward_stochastic_ctr(&tables, &plane, &root.derive(t as u64))
                .to_bits()
                .iter()
                .enumerate()
            {
                ct[c] += b.as_bool() as u32;
            }
        }
        for c in 0..out {
            let diff = (sm[c] as f64 - ct[c] as f64).abs() / trials as f64;
            assert!(
                diff <= 0.12,
                "channel {c}: seed-matched rate {} vs counter rate {}",
                sm[c] as f64 / trials as f64,
                ct[c] as f64 / trials as f64
            );
        }
    }

    /// In the gray-zone → 0 limit the counter engine also collapses onto
    /// the digital decision rule: saturated tables pin every window, so no
    /// counter draws happen at all.
    #[test]
    fn counter_zero_width_limit_is_the_digital_engine() {
        let h = hw(8, 8, 2.4, 8);
        let (fan_in, out) = (40, 5);
        let signs = pseudo_signs(fan_in * out, 2);
        let vth: Vec<f64> = (0..out).map(|o| o as f64 * 0.37 + 0.11).collect();
        let m = TiledMatrix::new(&signs, fan_in, out, vth, vec![false; out], &h);
        let packed = PackedTiledMatrix::from_tiled(&m);
        let zero = VariationModel::new(0.0, 0.0, 0.0).unwrap();
        let tables = packed.stochastic_tables(&zero);
        let root = CounterStream::from_seed(41);
        for salt in 0..8u64 {
            let input: Vec<Bit> = (0..fan_in)
                .map(|i| Bit::from_bool((i * 5 + salt as usize * 11) % 4 < 2))
                .collect();
            let plane = packed.forward_stochastic_ctr(
                &tables,
                &BitPlane::from_bits(&input),
                &root.derive(salt),
            );
            assert_eq!(plane.to_bits(), m.forward_digital(&input), "salt {salt}");
        }
    }

    /// Dead columns in counter mode pin the window at the source: the
    /// stuck channel reads its fabrication constant for every stream.
    #[test]
    fn counter_mode_dead_columns_read_their_constant() {
        let h = hw(64, 8, 8.0, 16);
        let (fan_in, out) = (40, 5);
        let signs = pseudo_signs(fan_in * out, 3);
        let vth = vec![0.0; out];
        let m = TiledMatrix::new(&signs, fan_in, out, vth, vec![false; out], &h);
        let mut packed = PackedTiledMatrix::from_tiled(&m);
        // Single-tile, single-group geometry: one die holds everything.
        packed.apply_faults(&[InjectedFaults {
            stuck_cells: vec![],
            dead_columns: vec![(1, Bit::One), (3, Bit::Zero)],
        }]);
        let tables = packed.stochastic_tables(&VariationModel::nominal());
        let root = CounterStream::from_seed(7);
        for salt in 0..8u64 {
            let input: Vec<Bit> = (0..fan_in)
                .map(|i| Bit::from_bool((i * 3 + salt as usize) % 5 < 2))
                .collect();
            let o = packed
                .forward_stochastic_ctr(&tables, &BitPlane::from_bits(&input), &root.derive(salt))
                .to_bits();
            assert_eq!(o[1], Bit::One, "stuck-'1' column, salt {salt}");
            assert_eq!(o[3], Bit::Zero, "stuck-'0' column, salt {salt}");
        }
    }

    /// The plane-batch seed-matched accuracy is RNG-identical to the
    /// dataset walk: same figure, same generator end state — the guarantee
    /// that lets sweeps share one packed eval set across trials.
    #[test]
    fn plane_batch_accuracy_is_rng_identical_to_the_dataset_walk() {
        let h = hw(16, 16, 4.0, 8);
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let model = spec.build_software(&h, 5);
        let packed = deploy(&spec, &model, &h).unwrap().to_packed();
        let tables = packed.stochastic_tables(&VariationModel::nominal());
        let data = bnn_datasets::digits::generate_digits(&bnn_datasets::SynthConfig {
            samples_per_class: 2,
            ..Default::default()
        });
        let planes: Vec<BitPlane> = (0..data.len())
            .map(|i| BitMap::from_tensor_sample(&data.images, i).to_plane())
            .collect();
        let mut a = DeviceRng::seed_from_u64(5);
        let mut b = DeviceRng::seed_from_u64(5);
        assert_eq!(
            packed.accuracy_stochastic(&tables, &data, &mut a, None),
            packed.accuracy_stochastic_planes(&tables, &planes, &data.labels, &mut b),
        );
        assert_eq!(
            a.gen::<u64>(),
            b.gen::<u64>(),
            "generator end states diverge"
        );
    }

    /// Mode mismatches are rejected loudly: counter entry points refuse
    /// seed-matched tables.
    #[test]
    #[should_panic(expected = "stochastic tables were built for")]
    fn counter_entry_rejects_seed_matched_tables() {
        let h = hw(16, 16, 4.0, 8);
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let model = spec.build_software(&h, 3);
        let packed = deploy(&spec, &model, &h).unwrap().to_packed();
        let tables = packed.stochastic_tables(&VariationModel::nominal());
        let plane = BitPlane::zeros(16 * 16);
        packed.classify_stochastic_plane_ctr(&tables, &plane, &CounterStream::from_seed(1));
    }

    /// And the seed-matched entry points refuse counter tables.
    #[test]
    #[should_panic(expected = "stochastic tables were built for")]
    fn seed_matched_entry_rejects_counter_tables() {
        let h = hw(16, 16, 4.0, 8);
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let model = spec.build_software(&h, 3);
        let packed = deploy(&spec, &model, &h).unwrap().to_packed();
        let tables = packed.stochastic_tables_mode(&VariationModel::nominal(), RngMode::Counter);
        let plane = BitPlane::zeros(16 * 16);
        let mut rng = DeviceRng::seed_from_u64(1);
        packed.classify_stochastic_plane(&tables, &plane, &mut rng);
    }

    /// Variation threading: drifting the scalar model's operating
    /// conditions equals parameterizing the packed tables — seed-matched.
    #[test]
    fn variation_tables_match_varied_scalar_model() {
        let h = hw(16, 8, 2.4, 16);
        let spec = NetSpec::mlp(&[1, 16, 16], &[16], 10);
        let model = spec.build_software(&h, 11);
        let vm = VariationModel::new(2.0, -0.15, 5.0).unwrap();
        let mut varied = deploy(&spec, &model, &h).unwrap();
        let packed = varied.to_packed();
        varied.apply_variation(&vm);
        let tables = packed.stochastic_tables(&vm);
        let data = bnn_datasets::digits::generate_digits(&bnn_datasets::SynthConfig {
            samples_per_class: 1,
            ..Default::default()
        });
        let mut scalar_rng = DeviceRng::seed_from_u64(21);
        let mut packed_rng = DeviceRng::seed_from_u64(21);
        for i in 0..data.len() {
            assert_eq!(
                packed.classify_stochastic(&tables, &data.images, i, &mut packed_rng),
                varied.classify(&data.images, i, &mut scalar_rng),
                "sample {i}"
            );
        }
    }
}
