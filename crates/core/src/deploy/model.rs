//! The deployed model: mapping from a trained [`Sequential`] and running
//! hardware-faithful inference.

use super::bitmap::BitMap;
use super::layer::{DeployedCell, DeployedConv, DeployedDense};
use crate::bnmatch::bn_match;
use crate::config::HardwareConfig;
use crate::spec::{CellSpec, NetSpec};
use aqfp_crossbar::cost::CrossbarCost;
use baselines::software::PopcountLinear;
use bnn_nn::layers::{BatchNorm, Conv2d, Linear};
use bnn_nn::{Sequential, Tensor};
use rand::Rng;
use std::fmt;

/// Errors raised while mapping a model onto hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeployError {
    /// The software model's layer at `index` was not the kind the spec
    /// demanded (spec and model out of sync).
    LayerMismatch {
        /// Layer index in the software model.
        index: usize,
        /// What the spec expected.
        expected: &'static str,
        /// What the model contains.
        got: &'static str,
    },
    /// The spec has no classifier cell.
    MissingClassifier,
    /// The spec contains a cell kind the crossbar mapper does not support
    /// (residual blocks keep a real-valued skip adder; see the
    /// `CellSpec::Residual` docs for the substitution note).
    UnsupportedCell {
        /// Human-readable cell kind.
        kind: &'static str,
    },
    /// A worker-thread count of zero was requested (the batch entry points
    /// and the sweep engine need at least one worker).
    ZeroWorkers,
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::LayerMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "layer {index}: spec expects {expected}, model has {got} \
                 (was the model built from this spec?)"
            ),
            DeployError::MissingClassifier => {
                write!(f, "network spec has no classifier cell")
            }
            DeployError::UnsupportedCell { kind } => {
                write!(
                    f,
                    "cell kind {kind} is not supported by the crossbar mapper"
                )
            }
            DeployError::ZeroWorkers => {
                write!(f, "worker count must be at least one")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// The digital classifier head: XNOR/popcount logits with the α/bias
/// affine applied at read-out (bit-exact with the software binary-weight
/// linear layer on ±1 inputs; see DESIGN.md §2).
#[derive(Debug, Clone, PartialEq)]
pub struct DeployedClassifier {
    pop: PopcountLinear,
    alphas: Vec<f32>,
    bias: Vec<f32>,
}

impl DeployedClassifier {
    /// Class scores for a flat binary feature vector.
    pub fn scores(&self, input: &BitMap) -> Vec<f32> {
        let signs = input.to_signs();
        self.affine(self.pop.forward(&signs))
    }

    /// Class scores for an already packed ±1 activation plane — the packed
    /// engine's head, bit-identical to [`DeployedClassifier::scores`]
    /// because both apply the same `α·dot + bias` affine to the same
    /// integer XNOR–popcount dots.
    ///
    /// # Panics
    /// Panics on input length mismatch.
    pub fn scores_plane(&self, input: &aqfp_sc::BitPlane) -> Vec<f32> {
        self.affine(self.pop.forward_plane(input))
    }

    fn affine(&self, dots: Vec<i32>) -> Vec<f32> {
        dots.into_iter()
            .zip(self.alphas.iter().zip(&self.bias))
            .map(|(dot, (&a, &b))| a * dot as f32 + b)
            .collect()
    }

    /// The underlying XNOR/popcount linear layer.
    pub fn popcount(&self) -> &PopcountLinear {
        &self.pop
    }

    /// The per-class α scales of the read-out affine.
    pub fn alphas(&self) -> &[f32] {
        &self.alphas
    }

    /// The per-class biases of the read-out affine.
    pub fn bias(&self) -> &[f32] {
        &self.bias
    }

    /// Reassembles a classifier head from its parts — the snapshot
    /// decoder's constructor. The caller (the snapshot codec) validates
    /// that all three parts have the same output count.
    pub(crate) fn from_parts(pop: PopcountLinear, alphas: Vec<f32>, bias: Vec<f32>) -> Self {
        debug_assert_eq!(pop.out_features(), alphas.len());
        debug_assert_eq!(alphas.len(), bias.len());
        Self { pop, alphas, bias }
    }
}

/// The winning class index: the maximum score, with ties resolved the same
/// way in every engine (last maximum, matching `Iterator::max_by`).
pub(crate) fn argmax(scores: &[f32]) -> usize {
    scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .expect("at least one class")
}

/// Hardware inventory of a deployed model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployStats {
    /// Total crossbar arrays.
    pub crossbars: usize,
    /// Total crossbar Josephson junctions.
    pub crossbar_jj: u64,
    /// Per-cell crossbar counts.
    pub per_cell_crossbars: Vec<usize>,
}

/// A model deployed onto AQFP hardware.
#[derive(Debug, Clone)]
pub struct DeployedModel {
    input_shape: [usize; 3],
    cells: Vec<DeployedCell>,
    classifier: DeployedClassifier,
}

impl DeployedModel {
    /// The expected input shape `[C, H, W]`.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// The deployed crossbar cells.
    pub fn cells(&self) -> &[DeployedCell] {
        &self.cells
    }

    /// Classifies sample `n` of an image batch; returns `(label, scores)`.
    pub fn classify<R: Rng + ?Sized>(
        &self,
        images: &Tensor,
        n: usize,
        rng: &mut R,
    ) -> (usize, Vec<f32>) {
        let mut map = BitMap::from_tensor_sample(images, n);
        for cell in &self.cells {
            map = match cell {
                DeployedCell::Conv(c) => c.forward(&map, rng),
                DeployedCell::Dense(d) => d.forward(&map, rng),
            };
        }
        // Flatten is implicit: the classifier consumes the bits in row-major
        // order, which matches the software Flatten layout.
        let flat = BitMap::from_bits(map.len(), 1, 1, map.bits().to_vec());
        let scores = self.classifier.scores(&flat);
        (argmax(&scores), scores)
    }

    /// Classifies sample `n` through the *digital* (deterministic) engine:
    /// the gray-zone → 0 limit of the stochastic datapath, evaluated with
    /// per-element scalar loops and no RNG. This is the scalar reference
    /// the packed XNOR–popcount engine
    /// ([`super::PackedModel`]) must reproduce bit-for-bit.
    pub fn classify_digital(&self, images: &Tensor, n: usize) -> (usize, Vec<f32>) {
        let mut map = BitMap::from_tensor_sample(images, n);
        for cell in &self.cells {
            map = match cell {
                DeployedCell::Conv(c) => c.forward_digital(&map),
                DeployedCell::Dense(d) => d.forward_digital(&map),
            };
        }
        let flat = BitMap::from_bits(map.len(), 1, 1, map.bits().to_vec());
        let scores = self.classifier.scores(&flat);
        (argmax(&scores), scores)
    }

    /// Top-1 accuracy of the digital engine over (the first `limit`
    /// samples of) a dataset.
    pub fn accuracy_digital(&self, data: &bnn_datasets::Dataset, limit: Option<usize>) -> f64 {
        let n = limit.map_or(data.len(), |l| l.min(data.len()));
        assert!(n > 0, "accuracy over zero samples");
        let correct = (0..n)
            .filter(|&i| self.classify_digital(&data.images, i).0 == data.labels[i])
            .count();
        correct as f64 / n as f64
    }

    /// The digital classifier head.
    pub fn classifier(&self) -> &DeployedClassifier {
        &self.classifier
    }

    /// Builds the batched bit-packed engine from this deployment (any
    /// injected faults are carried over). Shorthand for
    /// [`super::PackedModel::from_deployed`].
    pub fn to_packed(&self) -> super::PackedModel {
        super::PackedModel::from_deployed(self)
    }

    /// Top-1 accuracy over (the first `limit` samples of) a dataset.
    pub fn accuracy<R: Rng + ?Sized>(
        &self,
        data: &bnn_datasets::Dataset,
        rng: &mut R,
        limit: Option<usize>,
    ) -> f64 {
        let n = limit.map_or(data.len(), |l| l.min(data.len()));
        assert!(n > 0, "accuracy over zero samples");
        let mut correct = 0usize;
        for i in 0..n {
            let (pred, _) = self.classify(&data.images, i, rng);
            if pred == data.labels[i] {
                correct += 1;
            }
        }
        correct as f64 / n as f64
    }

    /// Injects fabrication faults into every crossbar (see
    /// [`aqfp_crossbar::faults`]); the digital classifier head is assumed
    /// testable/repairable and stays clean. Returns the total defect count.
    pub fn inject_faults<R: rand::Rng + ?Sized>(
        &mut self,
        model: &aqfp_crossbar::faults::FaultModel,
        rng: &mut R,
    ) -> usize {
        let mut defects = 0usize;
        for cell in &mut self.cells {
            defects += match cell {
                DeployedCell::Conv(c) => c.matrix_mut().inject_faults(model, rng),
                DeployedCell::Dense(d) => d.matrix_mut().inject_faults(model, rng),
            };
        }
        defects
    }

    /// Applies a device-parameter variation (gray-zone width scale,
    /// attenuation drift, temperature drift) to the *operating conditions*
    /// of every crossbar — see
    /// [`TiledMatrix::apply_variation`](super::TiledMatrix::apply_variation).
    /// Programmed thresholds and the digital
    /// engines' comparator quantization stay at their calibration-time
    /// values; only the stochastic datapath ([`DeployedModel::classify`])
    /// sees the drift. This is the scalar reference of the packed
    /// stochastic engine's variation-parameterized tables
    /// ([`super::PackedModel::stochastic_tables`]): both evaluate the same
    /// effective law, so classifications stay seed-matched under
    /// variation.
    pub fn apply_variation(&mut self, vm: &aqfp_device::VariationModel) {
        for cell in &mut self.cells {
            match cell {
                DeployedCell::Conv(c) => c.matrix_mut().apply_variation(vm),
                DeployedCell::Dense(d) => d.matrix_mut().apply_variation(vm),
            }
        }
    }

    /// Hardware inventory.
    pub fn stats(&self, hw: &HardwareConfig) -> DeployStats {
        let mut crossbars = 0usize;
        let mut crossbar_jj = 0u64;
        let mut per_cell = Vec::new();
        for cell in &self.cells {
            let matrix = match cell {
                DeployedCell::Conv(c) => c.matrix(),
                DeployedCell::Dense(d) => d.matrix(),
            };
            let count = matrix.crossbar_count();
            per_cell.push(count);
            crossbars += count;
            for t in &matrix.plan().tiles {
                crossbar_jj += CrossbarCost {
                    rows: t.rows.min(hw.crossbar_rows),
                    cols: t.cols.min(hw.crossbar_cols),
                }
                .jj_count();
            }
        }
        DeployStats {
            crossbars,
            crossbar_jj,
            per_cell_crossbars: per_cell,
        }
    }
}

/// Extracts the ±1 sign matrix of a latent weight tensor.
fn weight_signs(w: &Tensor) -> Vec<f32> {
    w.data()
        .iter()
        .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
        .collect()
}

/// Per-output α (L1 mean of each latent filter row).
fn weight_alphas(w: &Tensor) -> Vec<f32> {
    let (out, fan_in) = (w.shape()[0], w.shape()[1]);
    (0..out)
        .map(|o| {
            let row = &w.data()[o * fan_in..(o + 1) * fan_in];
            (row.iter().map(|v| v.abs()).sum::<f32>() / fan_in as f32).max(f32::MIN_POSITIVE)
        })
        .collect()
}

/// Maps a trained software model built from `spec` onto AQFP hardware.
///
/// # Errors
/// [`DeployError::LayerMismatch`] if the model was not built from this
/// spec; [`DeployError::MissingClassifier`] if the spec lacks a head.
pub fn deploy(
    spec: &NetSpec,
    model: &Sequential,
    hw: &HardwareConfig,
) -> crate::Result<DeployedModel> {
    hw.validate();
    let layers = model.layers();
    let mut idx = 0usize;
    let mut cells = Vec::new();
    let mut classifier = None;

    let expect = |idx: usize, expected: &'static str| DeployError::LayerMismatch {
        index: idx,
        expected,
        got: layers.get(idx).map_or("<end of model>", |l| l.name()),
    };

    for cell in &spec.cells {
        match *cell {
            CellSpec::BinarizeInput | CellSpec::Flatten => {
                idx += 1;
            }
            CellSpec::Residual { .. } => {
                return Err(DeployError::UnsupportedCell { kind: "Residual" });
            }
            CellSpec::Conv {
                in_c,
                out_c,
                k,
                stride,
                pad,
                pool,
            } => {
                let conv = layers
                    .get(idx)
                    .and_then(|l| l.as_any().downcast_ref::<Conv2d>())
                    .ok_or_else(|| expect(idx, "Conv2d"))?;
                // Pooling (if any) precedes BN in the software expansion.
                let bn_idx = idx + if pool { 2 } else { 1 };
                let bn = layers
                    .get(bn_idx)
                    .and_then(|l| l.as_any().downcast_ref::<BatchNorm>())
                    .ok_or_else(|| expect(bn_idx, "BatchNorm"))?;
                let signs = weight_signs(conv.weight());
                let alphas = weight_alphas(conv.weight());
                let p = bn.folded_params();
                let m = bn_match(p.gamma, p.beta, p.mean, p.var, &alphas, p.eps);
                cells.push(DeployedCell::Conv(DeployedConv::new(
                    &signs, in_c, out_c, k, stride, pad, pool, m.vth, m.flip, hw,
                )));
                idx += NetSpec::layers_of(cell);
            }
            CellSpec::Dense { in_f, out_f } => {
                let lin = layers
                    .get(idx)
                    .and_then(|l| l.as_any().downcast_ref::<Linear>())
                    .ok_or_else(|| expect(idx, "Linear"))?;
                let bn = layers
                    .get(idx + 1)
                    .and_then(|l| l.as_any().downcast_ref::<BatchNorm>())
                    .ok_or_else(|| expect(idx + 1, "BatchNorm"))?;
                let signs = weight_signs(lin.weight());
                let alphas = weight_alphas(lin.weight());
                let p = bn.folded_params();
                // The dense cell's linear layer has a trainable bias; it
                // shifts the BN input, so it folds into the matched mean.
                let adj_mean: Vec<f32> = p
                    .mean
                    .iter()
                    .zip(lin.bias().data())
                    .map(|(&m, &b)| m - b)
                    .collect();
                let m = bn_match(p.gamma, p.beta, &adj_mean, p.var, &alphas, p.eps);
                cells.push(DeployedCell::Dense(DeployedDense::new(
                    &signs, in_f, out_f, m.vth, m.flip, hw,
                )));
                idx += NetSpec::layers_of(cell);
            }
            CellSpec::Classifier { in_f, .. } => {
                let lin = layers
                    .get(idx)
                    .and_then(|l| l.as_any().downcast_ref::<Linear>())
                    .ok_or_else(|| expect(idx, "Linear"))?;
                let signs = weight_signs(lin.weight());
                let alphas = weight_alphas(lin.weight());
                classifier = Some(DeployedClassifier {
                    pop: PopcountLinear::new(&signs, in_f),
                    alphas,
                    bias: lin.bias().data().to_vec(),
                });
                idx += 1;
            }
        }
    }

    Ok(DeployedModel {
        input_shape: spec.input_shape,
        cells,
        classifier: classifier.ok_or(DeployError::MissingClassifier)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqfp_device::{DeviceRng, SeedableRng};
    use bnn_datasets::{digits::generate_digits, SynthConfig};

    fn tiny_hw() -> HardwareConfig {
        HardwareConfig {
            crossbar_rows: 32,
            crossbar_cols: 16,
            bitstream_len: 4,
            ..Default::default()
        }
    }

    #[test]
    fn deploys_mlp_and_classifies() {
        let hw = tiny_hw();
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let model = spec.build_software(&hw, 3);
        let deployed = deploy(&spec, &model, &hw).expect("deploys");
        assert_eq!(deployed.cells().len(), 1);
        let data = generate_digits(&SynthConfig {
            samples_per_class: 1,
            ..Default::default()
        });
        let mut rng = DeviceRng::seed_from_u64(0);
        let (label, scores) = deployed.classify(&data.images, 0, &mut rng);
        assert!(label < 10);
        assert_eq!(scores.len(), 10);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn deploys_vgg_and_runs() {
        let hw = tiny_hw();
        let spec = NetSpec::vgg_small([1, 16, 16], 4, 10);
        let model = spec.build_software(&hw, 4);
        let deployed = deploy(&spec, &model, &hw).expect("deploys");
        assert_eq!(deployed.cells().len(), 6);
        let data = generate_digits(&SynthConfig {
            samples_per_class: 1,
            ..Default::default()
        });
        let mut rng = DeviceRng::seed_from_u64(1);
        let (label, _) = deployed.classify(&data.images, 0, &mut rng);
        assert!(label < 10);
    }

    #[test]
    fn stats_count_crossbars() {
        let hw = tiny_hw();
        let spec = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let model = spec.build_software(&hw, 5);
        let deployed = deploy(&spec, &model, &hw).unwrap();
        let stats = deployed.stats(&hw);
        // Dense 256→32: ⌈256/32⌉ × ⌈32/16⌉ = 8 × 2 = 16 crossbars.
        assert_eq!(stats.crossbars, 16);
        assert!(stats.crossbar_jj > 0);
    }

    #[test]
    fn mismatched_spec_is_rejected() {
        let hw = tiny_hw();
        let spec_a = NetSpec::mlp(&[1, 16, 16], &[32], 10);
        let spec_b = NetSpec::vgg_small([1, 16, 16], 4, 10);
        let model_a = spec_a.build_software(&hw, 6);
        let err = deploy(&spec_b, &model_a, &hw).unwrap_err();
        assert!(matches!(err, DeployError::LayerMismatch { .. }));
    }

    #[test]
    fn fault_injection_counts_and_saturated_faults_flip_outputs() {
        let hw = tiny_hw();
        let spec = NetSpec::mlp(&[1, 16, 16], &[16], 10);
        let model = spec.build_software(&hw, 8);
        let mut deployed = deploy(&spec, &model, &hw).unwrap();
        // 100% dead columns: every crossbar output is a fabrication
        // constant; the model still runs and produces labels.
        let fm = aqfp_crossbar::faults::FaultModel::new(0.0, 1.0).unwrap();
        let mut rng = DeviceRng::seed_from_u64(3);
        let defects = deployed.inject_faults(&fm, &mut rng);
        assert!(defects > 0);
        let data = generate_digits(&SynthConfig {
            samples_per_class: 1,
            ..Default::default()
        });
        let (label, scores) = deployed.classify(&data.images, 0, &mut rng);
        assert!(label < 10);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn pristine_fault_model_changes_nothing() {
        let hw = tiny_hw();
        let spec = NetSpec::mlp(&[1, 16, 16], &[16], 10);
        let model = spec.build_software(&hw, 8);
        let clean = deploy(&spec, &model, &hw).unwrap();
        let mut faulty = deploy(&spec, &model, &hw).unwrap();
        let mut rng = DeviceRng::seed_from_u64(4);
        let defects =
            faulty.inject_faults(&aqfp_crossbar::faults::FaultModel::pristine(), &mut rng);
        assert_eq!(defects, 0);
        let data = generate_digits(&SynthConfig {
            samples_per_class: 1,
            ..Default::default()
        });
        let mut ra = DeviceRng::seed_from_u64(5);
        let mut rb = DeviceRng::seed_from_u64(5);
        assert_eq!(
            clean.classify(&data.images, 0, &mut ra),
            faulty.classify(&data.images, 0, &mut rb)
        );
    }

    #[test]
    fn accuracy_runs_over_subset() {
        let hw = tiny_hw();
        let spec = NetSpec::mlp(&[1, 16, 16], &[16], 10);
        let model = spec.build_software(&hw, 7);
        let deployed = deploy(&spec, &model, &hw).unwrap();
        let data = generate_digits(&SynthConfig {
            samples_per_class: 2,
            ..Default::default()
        });
        let mut rng = DeviceRng::seed_from_u64(2);
        let acc = deployed.accuracy(&data, &mut rng, Some(10));
        assert!((0.0..=1.0).contains(&acc));
    }
}
