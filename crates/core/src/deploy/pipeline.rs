//! The packed layer pipeline IR: every deployed cell lowered onto one
//! bit-packed substrate.
//!
//! [`PackedModel`](super::PackedModel) no longer assumes an MLP-shaped
//! stack: [`PackedModel::from_deployed`](super::PackedModel::from_deployed)
//! *lowers* a [`DeployedModel`](super::DeployedModel) into a linear plan of
//! [`PackedLayer`] stages, and the engine just folds a sample's
//! [`BitPlane`] through the plan. Every stage consumes and produces packed
//! `[C, H, W]` planes, so heterogeneous pipelines (CIFAR VGG's
//! conv → pool → … → flatten → classifier) ride the same word-parallel
//! fast path the dense engine already had.
//!
//! # Lowering rules
//!
//! | deployed cell | lowered stages |
//! |---|---|
//! | [`DeployedConv`] without pool | [`PackedLayer::Conv`] |
//! | [`DeployedConv`] with pool | [`PackedLayer::Conv`] + [`PackedLayer::Pool`] |
//! | [`DeployedDense`] after a spatial stage | [`PackedLayer::Flatten`] + [`PackedLayer::Linear`] |
//! | [`DeployedDense`] on flat input | [`PackedLayer::Linear`] |
//!
//! The classifier head is not a stage — it consumes the final plane
//! directly (`DeployedClassifier::scores_plane`).
//!
//! # Stage kernels
//!
//! * **Conv** — receptive fields are gathered by
//!   [`aqfp_sc::bitplane::packed_im2col`], which moves whole `u64` words
//!   per kernel row instead of setting one bit at a time, then evaluated
//!   through [`PackedTiledMatrix::forward_matrix`] (XNOR + masked
//!   popcount per crossbar tile, SWAR lanes where the tile geometry
//!   allows). Output bits are assembled as whole words per output channel
//!   and concatenated into the `[C, H, W]` plane with word shifts.
//! * **Pool** — 2×2 max-pool in the ±1 domain as pure word arithmetic:
//!   rows are aligned with [`copy_bits_range`], folded vertically with one
//!   OR/AND per word, folded horizontally into even bit slots, and packed
//!   with [`compress_even_bits`]. γ < 0 channels AND instead of OR
//!   (BN is decreasing there), matching `BitMap::pool2_mixed`.
//! * **Linear** — one [`PackedTiledMatrix::forward_plane`] call.
//! * **Flatten** — free: it only rewrites the shape.

use super::layer::{DeployedConv, DeployedDense};
use super::packed::PackedTiledMatrix;
use aqfp_sc::bitplane::{compress_even_bits, copy_bits_range, or_shifted_range, packed_im2col};
use aqfp_sc::BitPlane;

/// One stage of the packed pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PackedLayer {
    /// Packed convolution (bitplane im2col + tiled XNOR–popcount).
    Conv(PackedConvStage),
    /// 2×2 packed max-pool (OR, AND for γ < 0 channels).
    Pool(PackedPoolStage),
    /// Packed fully-connected stage.
    Linear(PackedLinearStage),
    /// Shape-only flatten to `[C·H·W, 1, 1]`.
    Flatten,
}

impl PackedLayer {
    /// Lowers one deployed cell into its packed stages (see the module
    /// docs for the rules). Dense cells lower without the leading
    /// [`PackedLayer::Flatten`]; the model-level lowering inserts it when
    /// the incoming shape is spatial.
    pub fn lower(cell: &super::DeployedCell) -> Vec<PackedLayer> {
        match cell {
            super::DeployedCell::Conv(c) => {
                let pooled = c.geometry().4;
                let mut stages = vec![PackedLayer::Conv(PackedConvStage::from_deployed(c))];
                if pooled {
                    stages.push(PackedLayer::Pool(PackedPoolStage::new(
                        c.matrix().flips().to_vec(),
                    )));
                }
                stages
            }
            super::DeployedCell::Dense(d) => {
                vec![PackedLayer::Linear(PackedLinearStage::from_deployed(d))]
            }
        }
    }

    /// Runs the stage on one sample, consuming its plane.
    ///
    /// # Panics
    /// Panics if `shape` does not match the plane or the stage geometry.
    pub fn forward(&self, input: BitPlane, shape: [usize; 3]) -> (BitPlane, [usize; 3]) {
        match self {
            PackedLayer::Conv(c) => c.forward(&input, shape),
            PackedLayer::Pool(p) => p.forward(&input, shape),
            PackedLayer::Linear(l) => {
                let out = l.forward(&input);
                let f = out.len();
                (out, [f, 1, 1])
            }
            PackedLayer::Flatten => {
                let [c, h, w] = shape;
                (input, [c * h * w, 1, 1])
            }
        }
    }

    /// The output shape for an input of `shape`.
    pub fn out_shape(&self, shape: [usize; 3]) -> [usize; 3] {
        match self {
            PackedLayer::Conv(c) => c.out_shape(shape),
            PackedLayer::Pool(_) => [shape[0], shape[1] / 2, shape[2] / 2],
            PackedLayer::Linear(l) => [l.matrix().out(), 1, 1],
            PackedLayer::Flatten => [shape[0] * shape[1] * shape[2], 1, 1],
        }
    }

    /// The stage's packed weight matrix, `None` for weight-free stages
    /// (pool, flatten) — the shared read side of the fault machinery:
    /// the fault-cone engine asks it which output channels a draw
    /// dirties, the screener asks it how many dies the stage spans.
    pub fn matrix(&self) -> Option<&PackedTiledMatrix> {
        match self {
            PackedLayer::Conv(c) => Some(c.matrix()),
            PackedLayer::Linear(l) => Some(l.matrix()),
            PackedLayer::Pool(_) | PackedLayer::Flatten => None,
        }
    }

    /// Mutable access to the stage's packed weight matrix — the
    /// fault-injection hook of the Monte Carlo robustness engine. `None`
    /// for weight-free stages (pool, flatten), which have no crossbar dies
    /// to be defective.
    pub fn matrix_mut(&mut self) -> Option<&mut PackedTiledMatrix> {
        match self {
            PackedLayer::Conv(c) => Some(c.matrix_mut()),
            PackedLayer::Linear(l) => Some(l.matrix_mut()),
            PackedLayer::Pool(_) | PackedLayer::Flatten => None,
        }
    }

    /// A short stage name for logs and per-stage timing reports.
    pub fn name(&self) -> &'static str {
        match self {
            PackedLayer::Conv(_) => "conv",
            PackedLayer::Pool(_) => "pool",
            PackedLayer::Linear(_) => "linear",
            PackedLayer::Flatten => "flatten",
        }
    }
}

/// Packed convolution: word-level im2col gather + tiled XNOR–popcount.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedConvStage {
    matrix: PackedTiledMatrix,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
}

impl PackedConvStage {
    /// Packs a deployed convolution cell (faults included; the cell's pool
    /// flag lowers to a separate [`PackedPoolStage`]).
    pub fn from_deployed(cell: &DeployedConv) -> Self {
        let (in_c, k, stride, pad, _pool) = cell.geometry();
        Self {
            matrix: PackedTiledMatrix::from_tiled(cell.matrix()),
            in_c,
            out_c: cell.matrix().out(),
            k,
            stride,
            pad,
        }
    }

    /// Reassembles a conv stage from a decoded matrix and its im2col
    /// geometry — the snapshot decoder's constructor (the codec validates
    /// `matrix.fan_in() == in_c · k · k` before calling this).
    pub(crate) fn from_parts(
        matrix: PackedTiledMatrix,
        in_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        let out_c = matrix.out();
        Self {
            matrix,
            in_c,
            out_c,
            k,
            stride,
            pad,
        }
    }

    /// The packed weight matrix.
    pub fn matrix(&self) -> &PackedTiledMatrix {
        &self.matrix
    }

    /// Mutable access to the packed weight matrix (fault injection).
    pub fn matrix_mut(&mut self) -> &mut PackedTiledMatrix {
        &mut self.matrix
    }

    /// `(input channels, kernel, stride, pad)` — the im2col geometry,
    /// shared by the digital and stochastic stage kernels.
    pub fn geometry(&self) -> (usize, usize, usize, usize) {
        (self.in_c, self.k, self.stride, self.pad)
    }

    /// Output shape (pre-pool) for an input of `shape`.
    ///
    /// # Panics
    /// Panics on a channel mismatch.
    pub fn out_shape(&self, shape: [usize; 3]) -> [usize; 3] {
        let [c, h, w] = shape;
        assert_eq!(c, self.in_c, "channel mismatch");
        let oh = (h + 2 * self.pad - self.k) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.k) / self.stride + 1;
        [self.out_c, oh, ow]
    }

    /// Runs the convolution on one packed `[C, H, W]` plane. Padding reads
    /// as '0' (−1), matching the software model's −1 padding.
    pub fn forward(&self, input: &BitPlane, shape: [usize; 3]) -> (BitPlane, [usize; 3]) {
        let [c, h, w] = shape;
        assert_eq!(input.len(), c * h * w, "plane/shape mismatch");
        let out_shape = self.out_shape(shape);
        let fields = packed_im2col(input, c, h, w, self.k, self.stride, self.pad, false);
        let out = self.matrix.forward_matrix(&fields);
        (out.concat_rows(), out_shape)
    }
}

/// Packed 2×2 max-pool with a per-channel OR/AND choice (AND for γ < 0
/// channels, where BN is decreasing) — bit-identical to
/// `BitMap::pool2_mixed`, evaluated as whole-word arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedPoolStage {
    and_channel: Vec<bool>,
}

impl PackedPoolStage {
    /// Builds the stage; `and_channel[c]` selects AND pooling for channel
    /// `c`.
    pub fn new(and_channel: Vec<bool>) -> Self {
        Self { and_channel }
    }

    /// The per-channel AND-pooling flags (`true` = AND, for γ < 0
    /// channels where BN is decreasing).
    pub fn and_channels(&self) -> &[bool] {
        &self.and_channel
    }

    /// Pools one packed `[C, H, W]` plane to `[C, H/2, W/2]`.
    ///
    /// # Panics
    /// Panics on odd spatial dims or a channel-count mismatch.
    pub fn forward(&self, input: &BitPlane, shape: [usize; 3]) -> (BitPlane, [usize; 3]) {
        let [c, h, w] = shape;
        assert_eq!(input.len(), c * h * w, "plane/shape mismatch");
        assert_eq!(self.and_channel.len(), c, "per-channel flag count mismatch");
        assert!(
            h.is_multiple_of(2) && w.is_multiple_of(2),
            "pool needs even spatial dims, got {h}×{w}"
        );
        let (oh, ow) = (h / 2, w / 2);
        let mut out = vec![0u64; (c * oh * ow).div_ceil(64)];
        let row_words = w.div_ceil(64);
        let mut ra = vec![0u64; row_words];
        let mut rb = vec![0u64; row_words];
        let mut packed = vec![0u64; ow.div_ceil(64)];
        let src = input.words();
        for (ci, &and) in self.and_channel.iter().enumerate() {
            for y in 0..oh {
                // Align the two input rows to word boundaries…
                copy_bits_range(&mut ra, 0, src, (ci * h + 2 * y) * w, w);
                copy_bits_range(&mut rb, 0, src, (ci * h + 2 * y + 1) * w, w);
                // …fold vertically, then fold horizontal pairs into their
                // even bit slots and compress: source word j yields pooled
                // outputs 32·j … 32·j + 31.
                for j in 0..row_words {
                    let v = if and { ra[j] & rb[j] } else { ra[j] | rb[j] };
                    let pairs = if and { v & (v >> 1) } else { v | (v >> 1) };
                    let half = compress_even_bits(pairs);
                    packed[j / 2] = if j % 2 == 0 {
                        half
                    } else {
                        packed[j / 2] | (half << 32)
                    };
                }
                or_shifted_range(&mut out, (ci * oh + y) * ow, &packed, 0, ow);
            }
        }
        (BitPlane::from_words(out, c * oh * ow), [c, oh, ow])
    }
}

/// Packed fully-connected stage: one tiled XNOR–popcount evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedLinearStage {
    matrix: PackedTiledMatrix,
}

impl PackedLinearStage {
    /// Packs a deployed dense cell (faults included).
    pub fn from_deployed(cell: &DeployedDense) -> Self {
        Self {
            matrix: PackedTiledMatrix::from_tiled(cell.matrix()),
        }
    }

    /// Wraps a decoded matrix — the snapshot decoder's constructor.
    pub(crate) fn from_matrix(matrix: PackedTiledMatrix) -> Self {
        Self { matrix }
    }

    /// The packed weight matrix.
    pub fn matrix(&self) -> &PackedTiledMatrix {
        &self.matrix
    }

    /// Mutable access to the packed weight matrix (fault injection).
    pub fn matrix_mut(&mut self) -> &mut PackedTiledMatrix {
        &mut self.matrix
    }

    /// Evaluates the stage on a flat packed plane.
    pub fn forward(&self, input: &BitPlane) -> BitPlane {
        self.matrix.forward_plane(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::BitMap;
    use aqfp_device::Bit;

    fn pseudo_map(c: usize, h: usize, w: usize, salt: usize) -> BitMap {
        let bits: Vec<Bit> = (0..c * h * w)
            .map(|i| Bit::from_bool((i * 7 + salt * 13 + 2) % 5 < 2))
            .collect();
        BitMap::from_bits(c, h, w, bits)
    }

    #[test]
    fn packed_pool_matches_scalar_mixed_pool() {
        for (c, h, w, salt) in [
            (1usize, 2usize, 2usize, 1usize),
            (3, 4, 6, 2),
            (5, 8, 70, 3),
        ] {
            let map = pseudo_map(c, h, w, salt);
            let and_channel: Vec<bool> = (0..c).map(|i| i % 2 == 1).collect();
            let stage = PackedPoolStage::new(and_channel.clone());
            let (plane, shape) = stage.forward(&map.to_plane(), [c, h, w]);
            let expect = map.pool2_mixed(&and_channel);
            assert_eq!(shape, [c, h / 2, w / 2], "{c}x{h}x{w}");
            assert_eq!(plane.to_bits(), expect.bits(), "{c}x{h}x{w}");
        }
    }

    #[test]
    fn flatten_only_rewrites_shape() {
        let map = pseudo_map(2, 3, 5, 4);
        let plane = map.to_plane();
        let (out, shape) = PackedLayer::Flatten.forward(plane.clone(), [2, 3, 5]);
        assert_eq!(out, plane);
        assert_eq!(shape, [30, 1, 1]);
        assert_eq!(PackedLayer::Flatten.out_shape([2, 3, 5]), [30, 1, 1]);
    }
}
