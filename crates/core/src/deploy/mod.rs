//! Hardware-faithful deployment: mapping a trained model onto crossbars and
//! running inference through the stochastic datapath.
//!
//! Deployment collapses each software BNN cell (binary conv → BN →
//! HardTanh → binarize) into crossbar tiles whose neuron thresholds carry
//! the folded batch norm (Eq. 16), with the SC accumulation module adding
//! partial sums across row tiles (Fig. 6b). Max-pooling in the ±1 domain is
//! a digital OR; the classifier head is a digital popcount layer with the
//! α/bias affine applied at read-out (see DESIGN.md §2 for the
//! substitution note on the output layer).
//!
//! # Four inference engines
//!
//! | engine | entry point | RNG | speed |
//! |---|---|---|---|
//! | scalar stochastic | [`DeployedModel::classify`] | yes | slowest |
//! | packed stochastic | [`PackedModel::classify_stochastic`] | yes | fast |
//! | scalar digital | [`DeployedModel::classify_digital`] | no | slow |
//! | packed digital | [`PackedModel::classify_batch`] | no | fastest |
//!
//! The *stochastic* engines simulate the full SC datapath (gray-zone
//! neuron noise, observation windows, APC accumulation) and are what
//! accuracy-vs-noise and variation-aware robustness experiments use. The
//! scalar one walks the datapath element by element and is the hardware
//! reference; the packed one ([`stochastic`]) evaluates **the same
//! semantics** on the `PackedLayer` pipeline — per-tile sums from the
//! SWAR popcount kernels, per-cell gray-zone probabilities precomputed
//! into Bernoulli draw-threshold tables, observation windows sampled as
//! packed word masks — consuming the RNG draw-for-draw like the scalar
//! engine, so the *same seed produces the same flips, labels and scores*
//! (several times faster; see `BENCH_stochastic.json`). Per-trial device
//! variation ([`aqfp_device::VariationModel`]: gray-zone width scale,
//! attenuation drift, temperature drift) parameterizes the packed tables
//! ([`PackedModel::stochastic_tables`]) and, on the scalar side, the
//! crossbars' operating conditions ([`DeployedModel::apply_variation`]) —
//! the two stay seed-matched under any variation.
//!
//! The *digital* engines evaluate the deterministic limit (gray-zone → 0,
//! exact counters): per-tile saturating comparators against integer
//! thresholds, majority-vote accumulation with ties to '1', dead-column
//! overrides. The scalar one walks activations bit-by-bit through
//! per-element loops and exists as the differential reference; the packed
//! one computes the identical decisions as XNOR + popcount over `u64`
//! bitplanes, batch-major, fanned across `std::thread::scope` workers —
//! use it whenever you need deterministic throughput (accuracy sweeps,
//! fault-injection campaigns, serving).
//!
//! # The packed layer pipeline (see [`pipeline`] and [`packed`])
//!
//! The packed engine is not a dense-only special case: lowering
//! ([`PackedModel::from_deployed`]) turns any deployed cell stack into a
//! linear plan of [`PackedLayer`] stages, each consuming and producing
//! packed `[C, H, W]` planes:
//!
//! | stage | kernel | fast path |
//! |---|---|---|
//! | [`PackedLayer::Conv`] | bitplane im2col (`aqfp_sc::bitplane::packed_im2col`) + tiled XNOR–popcount | word-shift gathers, SWAR tile lanes |
//! | [`PackedLayer::Pool`] | 2×2 OR/AND fold + even-bit compress | whole-word arithmetic |
//! | [`PackedLayer::Linear`] | one tiled XNOR–popcount evaluation | SWAR tile lanes |
//! | [`PackedLayer::Flatten`] | shape rewrite only | free |
//!
//! Lowering rules: conv cell → Conv (+ Pool if the cell pools); dense
//! cell → Linear, with a Flatten inserted when the incoming shape is
//! still spatial; the classifier head consumes the final plane directly.
//! Every stage — not just dense — hits the packed fast path, which is
//! what lets the CIFAR VGG workload run end-to-end on bitplanes.
//!
//! Fabrication faults can be injected on either side of lowering with
//! identical results: into the [`DeployedModel`] before `to_packed()`
//! (stuck cells overwrite crossbar weights) or directly into the lowered
//! [`PackedModel`] ([`PackedModel::inject_faults`] — word masks on the
//! weight planes, dead columns folded into the SWAR biases). The latter
//! is what the Monte Carlo robustness engine
//! ([`crate::robustness`]) clones and mutates per trial.
//!
//! # Packed layout (see [`packed`] for details)
//!
//! Bits are packed little-endian in the flat `[C, H, W]` feature index
//! (bit `i` → word `i / 64`, bit `i % 64`; '1' = +1); convolution padding
//! reads as '0' (−1), matching the software model's −1 padding; tail bits
//! of the last word stay zero. Batches are one [`aqfp_sc::PackedMatrix`]
//! row per sample with stride `words_per_row()`. The packed engine is
//! bit-identical to the scalar digital engine by construction *and* by
//! differential/golden tests (`tests/props.rs`, `tests/golden_deploy.rs`).
//!
//! # The wide-word datapath (see [`aqfp_sc::bitplane::Word`])
//!
//! All packed kernels are written against the lane-generic `Word` trait
//! and instantiated twice: at `u64` (the reference width, one output
//! pixel per word step) and at [`aqfp_sc::V256`] (`[u64; 4]`, four pixels
//! per step — plain per-lane loops the autovectorizer lowers to
//! 256-bit-wide instructions, no intrinsics). The hot GEMM path,
//! [`PackedTiledMatrix::forward_matrix_as`], cache-blocks the batch into
//! 64-pixel blocks, transposes each block's tile columns into wide words,
//! runs fused XNOR + SWAR vote accumulation across all tiles, then folds
//! votes back to bit-planes. The zero-tail layout invariant above is what
//! lets the SWAR comparator tables cover *every* tile including the
//! ragged last one: bits past a tile's width XNOR to a constant '1', so
//! the fixed inflation folds into the per-field threshold ("garbage
//! folding" — see [`packed`]). The two widths are pinned bit-identical by
//! width-differential property tests (`tests/props.rs`) and by the
//! `kernel_microbench` bench, which asserts equality before timing.

mod bitmap;
pub mod delta;
mod layer;
mod model;
pub mod packed;
pub mod pipeline;
pub mod snapshot;
pub mod stochastic;

pub(crate) use model::argmax;

pub use bitmap::BitMap;
pub use delta::{ActivationCache, DirtyChannels};
pub use layer::{DeployedCell, DeployedConv, DeployedDense, TiledMatrix};
pub use model::{deploy, DeployError, DeployStats, DeployedClassifier, DeployedModel};
pub use packed::{PackedModel, PackedTiledMatrix};
pub use pipeline::{PackedConvStage, PackedLayer, PackedLinearStage, PackedPoolStage};
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use stochastic::{MatrixStochasticTables, RngMode, StochasticTables};
