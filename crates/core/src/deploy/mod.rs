//! Hardware-faithful deployment: mapping a trained model onto crossbars and
//! running inference through the stochastic datapath.
//!
//! Deployment collapses each software BNN cell (binary conv → BN →
//! HardTanh → binarize) into crossbar tiles whose neuron thresholds carry
//! the folded batch norm (Eq. 16), with the SC accumulation module adding
//! partial sums across row tiles (Fig. 6b). Max-pooling in the ±1 domain is
//! a digital OR; the classifier head is a digital popcount layer with the
//! α/bias affine applied at read-out (see DESIGN.md §2 for the
//! substitution note on the output layer).

mod bitmap;
mod layer;
mod model;

pub use bitmap::BitMap;
pub use layer::{DeployedCell, DeployedConv, DeployedDense};
pub use model::{deploy, DeployError, DeployStats, DeployedClassifier, DeployedModel};
