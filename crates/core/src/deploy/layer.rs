//! Deployed crossbar layers: convolution and dense cells.

use super::bitmap::BitMap;
use crate::config::HardwareConfig;
use aqfp_crossbar::array::Crossbar;
use aqfp_crossbar::faults::{apply_stuck_cells, draw_faults, FaultModel};
use aqfp_crossbar::tile::TilingPlan;
use aqfp_device::Bit;
use aqfp_sc::{AccumulationModule, Bitstream};
use rand::Rng;
use std::collections::HashMap;

/// Shared machinery of conv and dense cells: a weight matrix tiled over
/// crossbars, BN-matched thresholds, SC accumulation across row tiles.
#[derive(Debug, Clone)]
pub struct TiledMatrix {
    plan: TilingPlan,
    /// Crossbars aligned with `plan.tiles`.
    tiles: Vec<Crossbar>,
    /// Per-output-channel inversion from BN matching (γ < 0).
    flips: Vec<bool>,
    /// Per-output-channel latent threshold (for bookkeeping/reports).
    vth: Vec<f64>,
    /// Dead neuron columns from fault injection: `(tile index, column
    /// within tile) → stuck output bit`.
    dead: HashMap<(usize, usize), Bit>,
    /// Per-tile, per-column integer comparator thresholds of the digital
    /// (deterministic) engines: tile bit = '1' iff the tile's XNOR-product
    /// sum is `≥ min_sums[tile][col]`. Quantized once from the programmed
    /// µA thresholds so the scalar and packed engines share one decision
    /// rule bit-for-bit.
    min_sums: Vec<Vec<i64>>,
    window: usize,
    counter: aqfp_sc::accumulate::CounterKind,
    fan_in: usize,
    out: usize,
}

impl TiledMatrix {
    /// Builds the tiled deployment of a `[out, fan_in]` ±1 sign matrix with
    /// per-channel latent thresholds `vth` and inversion flags `flips`.
    ///
    /// Each tile's neuron thresholds get `vth/row_tiles` scaled by that
    /// tile's own attenuated unit current (Section 5.2: "divide Ith evenly
    /// and assign them to the corresponding crossbar").
    ///
    /// # Panics
    /// Panics on dimension mismatches.
    pub fn new(
        signs: &[f32],
        fan_in: usize,
        out: usize,
        vth: Vec<f64>,
        flips: Vec<bool>,
        hw: &HardwareConfig,
    ) -> Self {
        assert_eq!(signs.len(), fan_in * out, "sign matrix shape mismatch");
        assert_eq!(vth.len(), out, "threshold count mismatch");
        assert_eq!(flips.len(), out, "flip count mismatch");
        let plan = TilingPlan::new(fan_in, out, hw.crossbar_rows, hw.crossbar_cols);
        let row_tiles = plan.row_tiles() as f64;
        let mut tiles = Vec::with_capacity(plan.tiles.len());
        for t in &plan.tiles {
            // Weight submatrix: rows are fan-in positions, cols channels.
            let weights: Vec<Vec<Bit>> = (t.row_start..t.row_start + t.rows)
                .map(|r| {
                    (t.col_start..t.col_start + t.cols)
                        .map(|c| Bit::from_sign(signs[c * fan_in + r] as f64))
                        .collect()
                })
                .collect();
            let mut xbar =
                Crossbar::new(hw.crossbar_config(), weights).expect("plan tiles are non-empty");
            let i1 = hw.attenuation.i1_ua(t.rows);
            let thresholds: Vec<f64> = (t.col_start..t.col_start + t.cols)
                .map(|c| {
                    let v = vth[c] / row_tiles;
                    if v.is_finite() {
                        v * i1
                    } else {
                        // Constant channels (γ ≈ 0): an unreachable current.
                        v.signum() * 1e9
                    }
                })
                .collect();
            xbar.set_thresholds_ua(thresholds).expect("lengths match");
            tiles.push(xbar);
        }
        let min_sums = tiles.iter().map(digital_min_sums).collect();
        Self {
            plan,
            tiles,
            flips,
            vth,
            dead: HashMap::new(),
            min_sums,
            window: hw.bitstream_len,
            counter: hw.counter,
            fan_in,
            out,
        }
    }

    /// Injects fabrication faults into every tile: stuck LiM cells
    /// overwrite stored weights; dead columns pin that tile's neuron output
    /// to a constant. Returns the total defect count. Deterministic for a
    /// given RNG state.
    pub fn inject_faults<R: Rng + ?Sized>(&mut self, model: &FaultModel, rng: &mut R) -> usize {
        let mut defects = 0usize;
        for (i, xbar) in self.tiles.iter_mut().enumerate() {
            let faults = draw_faults(model, xbar.rows(), xbar.cols(), rng);
            defects += faults.count();
            apply_stuck_cells(xbar, &faults);
            for &(col, bit) in &faults.dead_columns {
                self.dead.insert((i, col), bit);
            }
        }
        defects
    }

    /// Applies **pre-drawn** fabrication faults, one
    /// [`aqfp_crossbar::faults::InjectedFaults`] per tile crossbar in
    /// plan order — the scalar twin of
    /// `PackedTiledMatrix::apply_faults`, used by the fault-universe
    /// equivalence checks to put the same named defect on both engines.
    /// Out-of-range cells within an entry are ignored (matching
    /// [`apply_stuck_cells`]); an empty slice is a no-op.
    ///
    /// # Panics
    /// Panics if `faults` is non-empty and its length does not match the
    /// crossbar count.
    pub fn apply_faults(&mut self, faults: &[aqfp_crossbar::faults::InjectedFaults]) {
        if faults.is_empty() {
            return;
        }
        assert_eq!(
            faults.len(),
            self.tiles.len(),
            "fault draw / tile count mismatch"
        );
        for (i, (xbar, f)) in self.tiles.iter_mut().zip(faults).enumerate() {
            apply_stuck_cells(xbar, f);
            for &(col, bit) in &f.dead_columns {
                if col < xbar.cols() {
                    self.dead.insert((i, col), bit);
                }
            }
        }
    }

    /// Fan-in of the matrix.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Output channels.
    pub fn out(&self) -> usize {
        self.out
    }

    /// The tiling plan.
    pub fn plan(&self) -> &TilingPlan {
        &self.plan
    }

    /// Per-channel latent thresholds (for reports).
    pub fn vth(&self) -> &[f64] {
        &self.vth
    }

    /// Per-channel output-inversion flags (γ < 0 channels).
    pub fn flips(&self) -> &[bool] {
        &self.flips
    }

    /// The SC observation window `L` (bit-stream length) of the
    /// stochastic datapath.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The parallel-counter implementation of the SC accumulation module.
    pub fn counter(&self) -> aqfp_sc::accumulate::CounterKind {
        self.counter
    }

    /// Applies a device-parameter variation to the *operating conditions*
    /// of every tile crossbar: the gray-zone width and the attenuation
    /// model drift, while the programmed thresholds — and the digital
    /// engines' quantized comparator tables, which model the
    /// calibration-time programming — stay untouched. Only the stochastic
    /// datapath ([`TiledMatrix::forward`]) sees the drift, exactly like
    /// the packed engine's variation-parameterized flip tables.
    pub fn apply_variation(&mut self, vm: &aqfp_device::VariationModel) {
        for xbar in &mut self.tiles {
            xbar.set_config(xbar.config().with_variation(vm));
        }
    }

    /// Evaluates all output channels for one input vector through the full
    /// stochastic datapath: crossbar observation windows → APC accumulation
    /// → comparator → (optional) inversion.
    ///
    /// # Panics
    /// Panics if `input.len() != fan_in`.
    pub fn forward<R: Rng + ?Sized>(&self, input: &[Bit], rng: &mut R) -> Vec<Bit> {
        assert_eq!(input.len(), self.fan_in, "input length mismatch");
        let row_tiles = self.plan.row_tiles();
        let acc = AccumulationModule::new(row_tiles, self.window).with_counter(self.counter);
        let mut out = vec![Bit::Zero; self.out];

        // Group tiles by column group; plan tiles are emitted column-major
        // (all row tiles of one column group consecutively).
        let mut tile_idx = 0;
        while tile_idx < self.tiles.len() {
            let col_start = self.plan.tiles[tile_idx].col_start;
            let cols = self.plan.tiles[tile_idx].cols;
            // Collect the row-tile observation streams for this col group.
            let mut group_streams: Vec<Vec<Vec<Bit>>> = Vec::with_capacity(row_tiles);
            for r in 0..row_tiles {
                let t = &self.plan.tiles[tile_idx + r];
                let slice = &input[t.row_start..t.row_start + t.rows];
                let mut streams = self.tiles[tile_idx + r]
                    .observe(slice, self.window, rng)
                    .expect("tile geometry is consistent");
                for (c, stream) in streams.iter_mut().enumerate() {
                    if let Some(&bit) = self.dead.get(&(tile_idx + r, c)) {
                        stream.iter_mut().for_each(|b| *b = bit);
                    }
                }
                group_streams.push(streams);
            }
            for c in 0..cols {
                let channel = col_start + c;
                let streams: Vec<Bitstream> = group_streams
                    .iter()
                    .map(|per_tile| Bitstream::from_bits(per_tile[c].clone()))
                    .collect();
                let bit = acc.binarize(&streams).expect("window lengths match");
                out[channel] = if self.flips[channel] { bit.not() } else { bit };
            }
            tile_idx += row_tiles;
        }
        out
    }

    /// The noiseless reference decision (ideal comparators, no SC noise):
    /// sign of the whole latent sum against the channel threshold. Used by
    /// tests to check the stochastic path converges to the right answer.
    #[allow(clippy::needless_range_loop)] // r walks two indexings at once
    pub fn forward_ideal(&self, input: &[Bit]) -> Vec<Bit> {
        assert_eq!(input.len(), self.fan_in, "input length mismatch");
        (0..self.out)
            .map(|channel| {
                let mut sum = 0i64;
                for r in 0..self.fan_in {
                    let w = self.weight_sign(r, channel);
                    let a = input[r].to_value() as i64;
                    sum += w as i64 * a;
                }
                let decision = (sum as f64) >= self.vth[channel];
                Bit::from_bool(decision != self.flips[channel])
            })
            .collect()
    }

    /// The digital (deterministic) engine: the gray-zone → 0 limit of the
    /// stochastic datapath with exact counters, evaluated with per-element
    /// scalar loops. Each row tile's XNOR-product sum is compared against
    /// its quantized integer threshold (a saturating per-tile comparator,
    /// faithful to the hardware's partial-sum binarization); the SC
    /// accumulation reduces to a majority vote over the tile bits with
    /// ties resolving to '1' (the comparator's `T ≥ kL/2` midpoint rule on
    /// constant streams); dead columns pin their tile's vote.
    ///
    /// This is the *scalar reference* the packed XNOR–popcount engine in
    /// [`super::packed`] is differentially tested against: both must agree
    /// bit-for-bit on every input.
    ///
    /// # Panics
    /// Panics if `input.len() != fan_in`.
    pub fn forward_digital(&self, input: &[Bit]) -> Vec<Bit> {
        assert_eq!(input.len(), self.fan_in, "input length mismatch");
        let k = self.plan.row_tiles();
        let mut out = vec![Bit::Zero; self.out];
        let mut tile_idx = 0;
        while tile_idx < self.tiles.len() {
            let col_start = self.plan.tiles[tile_idx].col_start;
            let cols = self.plan.tiles[tile_idx].cols;
            for c in 0..cols {
                let channel = col_start + c;
                let mut votes = 0usize;
                for r in 0..k {
                    let idx = tile_idx + r;
                    let vote = if let Some(&b) = self.dead.get(&(idx, c)) {
                        b.as_bool()
                    } else {
                        let t = &self.plan.tiles[idx];
                        let slice = &input[t.row_start..t.row_start + t.rows];
                        let sum = self.tiles[idx]
                            .raw_sum(c, slice)
                            .expect("tile geometry is consistent");
                        sum as i64 >= self.min_sums[idx][c]
                    };
                    votes += vote as usize;
                }
                let bit = Bit::from_bool(2 * votes >= k);
                out[channel] = if self.flips[channel] { bit.not() } else { bit };
            }
            tile_idx += k;
        }
        out
    }

    /// The per-tile crossbars, aligned with `plan().tiles` (weight source
    /// of the packed engine — includes any injected stuck-cell faults).
    pub fn tile_crossbars(&self) -> &[Crossbar] {
        &self.tiles
    }

    /// Dead neuron columns from fault injection:
    /// `(tile index, column within tile) → stuck output bit`.
    pub fn dead_outputs(&self) -> &HashMap<(usize, usize), Bit> {
        &self.dead
    }

    /// The quantized per-tile integer comparator thresholds of the digital
    /// engines, aligned with `plan().tiles`.
    pub fn digital_min_sums(&self) -> &[Vec<i64>] {
        &self.min_sums
    }

    fn weight_sign(&self, row: usize, channel: usize) -> i32 {
        // Find the tile containing (row, channel).
        for (i, t) in self.plan.tiles.iter().enumerate() {
            if row >= t.row_start
                && row < t.row_start + t.rows
                && channel >= t.col_start
                && channel < t.col_start + t.cols
            {
                return self.tiles[i]
                    .weight(row - t.row_start, channel - t.col_start)
                    .to_value() as i32;
            }
        }
        unreachable!("tiling covers the matrix");
    }

    /// Number of crossbars.
    pub fn crossbar_count(&self) -> usize {
        self.tiles.len()
    }
}

/// Quantizes one crossbar's programmed µA thresholds into integer
/// XNOR-sum comparator references: the tile bit of the digital engines is
/// '1' iff `sum ≥ min_sum`, the deterministic limit of the neuron's
/// `current ≥ Ith` decision (`sum · I1 ≥ Ith ⟺ sum ≥ ⌈Ith / I1⌉` for
/// integer sums with `I1 > 0`). Values are clamped to `±(rows + 1)` so the
/// `±1e9`-encoded constant channels (γ ≈ 0) stay constant and comparisons
/// never overflow.
fn digital_min_sums(xbar: &Crossbar) -> Vec<i64> {
    let i1 = xbar.unit_current_ua();
    let rows = xbar.rows() as i64;
    xbar.thresholds_ua()
        .iter()
        .map(|&th| {
            let min = (th / i1).ceil();
            if min <= -(rows as f64 + 1.0) {
                -(rows + 1)
            } else if min >= rows as f64 + 1.0 {
                rows + 1
            } else {
                min as i64
            }
        })
        .collect()
}

/// A deployed convolution cell (conv + folded BN + binarize + optional
/// OR-pool).
#[derive(Debug, Clone)]
pub struct DeployedConv {
    matrix: TiledMatrix,
    in_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    pool: bool,
}

impl DeployedConv {
    /// Builds the cell. `signs` is the `[out, in·k·k]` weight-sign matrix.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        signs: &[f32],
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        pool: bool,
        vth: Vec<f64>,
        flips: Vec<bool>,
        hw: &HardwareConfig,
    ) -> Self {
        let fan_in = in_c * k * k;
        Self {
            matrix: TiledMatrix::new(signs, fan_in, out_c, vth, flips, hw),
            in_c,
            k,
            stride,
            pad,
            pool,
        }
    }

    /// The tiled weight matrix.
    pub fn matrix(&self) -> &TiledMatrix {
        &self.matrix
    }

    /// Mutable access (fault injection).
    pub fn matrix_mut(&mut self) -> &mut TiledMatrix {
        &mut self.matrix
    }

    /// Output spatial size for an input of `h × w`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad - self.k) / self.stride + 1;
        let ow = (w + 2 * self.pad - self.k) / self.stride + 1;
        if self.pool {
            (oh / 2, ow / 2)
        } else {
            (oh, ow)
        }
    }

    /// Runs the cell on one binary feature map.
    pub fn forward<R: Rng + ?Sized>(&self, input: &BitMap, rng: &mut R) -> BitMap {
        assert_eq!(input.c, self.in_c, "channel mismatch");
        let oh = (input.h + 2 * self.pad - self.k) / self.stride + 1;
        let ow = (input.w + 2 * self.pad - self.k) / self.stride + 1;
        let out_c = self.matrix.out();
        let mut out = BitMap::zeros(out_c, oh, ow);
        for oy in 0..oh {
            for ox in 0..ow {
                let field = input.receptive_field(oy, ox, self.k, self.stride, self.pad);
                let bits = self.matrix.forward(&field, rng);
                for (c, &b) in bits.iter().enumerate() {
                    out.set(c, oy, ox, b);
                }
            }
        }
        if self.pool {
            out.pool2_mixed(self.matrix.flips())
        } else {
            out
        }
    }

    /// Runs the cell through the digital (deterministic) engine — the
    /// scalar reference of the packed path. See
    /// [`TiledMatrix::forward_digital`].
    pub fn forward_digital(&self, input: &BitMap) -> BitMap {
        assert_eq!(input.c, self.in_c, "channel mismatch");
        let oh = (input.h + 2 * self.pad - self.k) / self.stride + 1;
        let ow = (input.w + 2 * self.pad - self.k) / self.stride + 1;
        let out_c = self.matrix.out();
        let mut out = BitMap::zeros(out_c, oh, ow);
        for oy in 0..oh {
            for ox in 0..ow {
                let field = input.receptive_field(oy, ox, self.k, self.stride, self.pad);
                let bits = self.matrix.forward_digital(&field);
                for (c, &b) in bits.iter().enumerate() {
                    out.set(c, oy, ox, b);
                }
            }
        }
        if self.pool {
            out.pool2_mixed(self.matrix.flips())
        } else {
            out
        }
    }

    /// `(input channels, kernel, stride, pad, pooled)` — the geometry the
    /// packed engine replicates.
    pub fn geometry(&self) -> (usize, usize, usize, usize, bool) {
        (self.in_c, self.k, self.stride, self.pad, self.pool)
    }

    /// Crossbar evaluations (output pixels before pooling) per sample —
    /// the energy model's activity factor.
    pub fn evals_per_sample(&self, in_h: usize, in_w: usize) -> usize {
        let oh = (in_h + 2 * self.pad - self.k) / self.stride + 1;
        let ow = (in_w + 2 * self.pad - self.k) / self.stride + 1;
        oh * ow
    }
}

/// A deployed dense (fully-connected) cell.
#[derive(Debug, Clone)]
pub struct DeployedDense {
    matrix: TiledMatrix,
}

impl DeployedDense {
    /// Builds from a `[out, in]` sign matrix.
    pub fn new(
        signs: &[f32],
        in_f: usize,
        out_f: usize,
        vth: Vec<f64>,
        flips: Vec<bool>,
        hw: &HardwareConfig,
    ) -> Self {
        Self {
            matrix: TiledMatrix::new(signs, in_f, out_f, vth, flips, hw),
        }
    }

    /// The tiled weight matrix.
    pub fn matrix(&self) -> &TiledMatrix {
        &self.matrix
    }

    /// Mutable access (fault injection).
    pub fn matrix_mut(&mut self) -> &mut TiledMatrix {
        &mut self.matrix
    }

    /// Runs the cell on a flat binary vector (a `[F, 1, 1]` map).
    pub fn forward<R: Rng + ?Sized>(&self, input: &BitMap, rng: &mut R) -> BitMap {
        let bits = self.matrix.forward(input.bits(), rng);
        BitMap::from_bits(bits.len(), 1, 1, bits)
    }

    /// Runs the cell through the digital (deterministic) engine — the
    /// scalar reference of the packed path. See
    /// [`TiledMatrix::forward_digital`].
    pub fn forward_digital(&self, input: &BitMap) -> BitMap {
        let bits = self.matrix.forward_digital(input.bits());
        BitMap::from_bits(bits.len(), 1, 1, bits)
    }
}

/// One deployed cell of the pipeline.
#[derive(Debug, Clone)]
pub enum DeployedCell {
    /// A convolution cell.
    Conv(DeployedConv),
    /// A dense cell.
    Dense(DeployedDense),
}

#[cfg(test)]
mod tests {
    use super::*;
    use aqfp_device::{DeviceRng, SeedableRng};

    fn hw_small() -> HardwareConfig {
        HardwareConfig {
            crossbar_rows: 8,
            crossbar_cols: 8,
            // Narrow gray-zone → near-deterministic neurons for exact tests.
            grayzone_ua: 0.05,
            bitstream_len: 8,
            ..Default::default()
        }
    }

    #[test]
    fn single_tile_matches_ideal_in_deterministic_regime() {
        // With fan-in ≤ crossbar rows (one row tile) and a vanishing
        // gray-zone, the stochastic datapath must agree with the ideal sign
        // decision except at exact ties.
        let hw = hw_small();
        let fan_in = 7; // odd: integer sums are never exactly 0
        let out = 3;
        let signs: Vec<f32> = (0..fan_in * out)
            .map(|i| if (i * 7) % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let m = TiledMatrix::new(&signs, fan_in, out, vec![0.0; 3], vec![false; 3], &hw);
        assert_eq!(m.crossbar_count(), 1);
        let mut rng = DeviceRng::seed_from_u64(0);
        for pat in 0..128u32 {
            let input: Vec<Bit> = (0..fan_in)
                .map(|i| Bit::from_bool((pat >> i) & 1 == 1))
                .collect();
            let ideal = m.forward_ideal(&input);
            let got = m.forward(&input, &mut rng);
            assert_eq!(got, ideal, "pattern {pat:b}");
        }
    }

    #[test]
    fn multi_tile_accumulation_saturates_partial_sums() {
        // Splitting a filter across crossbars binarizes each partial sum
        // before accumulation: a +2 partial and a −6 partial both saturate
        // to ±1 and cancel — the information loss the paper's SC bit-stream
        // and gray-zone co-optimization exists to manage (Challenge #3).
        let hw = hw_small(); // 8 rows per tile, near-zero gray-zone
        let fan_in = 16; // 2 row tiles
        let signs = vec![1.0f32; fan_in];
        let m = TiledMatrix::new(&signs, fan_in, 1, vec![0.0], vec![false], &hw);
        assert_eq!(m.plan().row_tiles(), 2);
        // First tile: 5 ones, 3 zeros → partial +2. Second: all zeros → −8.
        let mut input = vec![Bit::Zero; fan_in];
        for bit in input.iter_mut().take(5) {
            *bit = Bit::One;
        }
        // Ideal whole-sum decision: +2 − 8 = −6 → '0'.
        assert_eq!(m.forward_ideal(&input), vec![Bit::Zero]);
        // Deployed: tile bits (+1, −1) tie at the midpoint → '1' (ties
        // resolve up). The saturation flipped the decision.
        let mut rng = DeviceRng::seed_from_u64(9);
        assert_eq!(m.forward(&input, &mut rng), vec![Bit::One]);
    }

    #[test]
    fn digital_engine_matches_stochastic_in_deterministic_regime() {
        // With a vanishing gray-zone the stochastic datapath is the digital
        // engine plus RNG bookkeeping: every decision must agree away from
        // exact ties (odd fan-in avoids them).
        let hw = hw_small();
        let fan_in = 7;
        let out = 3;
        let signs: Vec<f32> = (0..fan_in * out)
            .map(|i| if (i * 7) % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let m = TiledMatrix::new(&signs, fan_in, out, vec![0.0; 3], vec![false; 3], &hw);
        let mut rng = DeviceRng::seed_from_u64(12);
        for pat in 0..128u32 {
            let input: Vec<Bit> = (0..fan_in)
                .map(|i| Bit::from_bool((pat >> i) & 1 == 1))
                .collect();
            assert_eq!(
                m.forward_digital(&input),
                m.forward(&input, &mut rng),
                "pattern {pat:b}"
            );
        }
    }

    #[test]
    fn digital_engine_reproduces_tile_saturation_and_tie_up() {
        // Same scenario as multi_tile_accumulation_saturates_partial_sums:
        // partial sums +2 and −8 saturate to per-tile bits (1, 0); the
        // majority vote ties at the midpoint and resolves to '1'.
        let hw = hw_small();
        let fan_in = 16;
        let signs = vec![1.0f32; fan_in];
        let m = TiledMatrix::new(&signs, fan_in, 1, vec![0.0], vec![false], &hw);
        let mut input = vec![Bit::Zero; fan_in];
        for bit in input.iter_mut().take(5) {
            *bit = Bit::One;
        }
        assert_eq!(m.forward_ideal(&input), vec![Bit::Zero]);
        assert_eq!(m.forward_digital(&input), vec![Bit::One]);
    }

    #[test]
    fn flips_invert_output() {
        let hw = hw_small();
        let signs = vec![1.0f32; 4];
        let m_plain = TiledMatrix::new(&signs, 4, 1, vec![0.0], vec![false], &hw);
        let m_flip = TiledMatrix::new(&signs, 4, 1, vec![0.0], vec![true], &hw);
        let input = vec![Bit::One; 4]; // sum +4, clearly positive
        let mut rng = DeviceRng::seed_from_u64(1);
        assert_eq!(m_plain.forward(&input, &mut rng), vec![Bit::One]);
        assert_eq!(m_flip.forward(&input, &mut rng), vec![Bit::Zero]);
    }

    #[test]
    fn thresholds_shift_decisions() {
        let hw = hw_small();
        let signs = vec![1.0f32; 4];
        // Threshold above +4: even an all-ones input reads '0'.
        let m = TiledMatrix::new(&signs, 4, 1, vec![5.0], vec![false], &hw);
        let mut rng = DeviceRng::seed_from_u64(2);
        assert_eq!(m.forward(&[Bit::One; 4], &mut rng), vec![Bit::Zero]);
    }

    #[test]
    fn conv_cell_identity_kernel() {
        let hw = hw_small();
        // 1 channel, 1×1 kernel, weight +1, threshold 0: identity.
        let cell = DeployedConv::new(&[1.0], 1, 1, 1, 1, 0, false, vec![0.0], vec![false], &hw);
        let mut input = BitMap::zeros(1, 2, 2);
        input.set(0, 0, 1, Bit::One);
        input.set(0, 1, 0, Bit::One);
        let mut rng = DeviceRng::seed_from_u64(3);
        let out = cell.forward(&input, &mut rng);
        assert_eq!(out.bits(), input.bits());
    }

    #[test]
    fn conv_cell_pooling_halves_size() {
        let hw = hw_small();
        let cell = DeployedConv::new(&[1.0], 1, 1, 1, 1, 0, true, vec![0.0], vec![false], &hw);
        let input = BitMap::zeros(1, 4, 4);
        let mut rng = DeviceRng::seed_from_u64(4);
        let out = cell.forward(&input, &mut rng);
        assert_eq!((out.h, out.w), (2, 2));
        assert_eq!(cell.out_size(4, 4), (2, 2));
    }

    #[test]
    fn dense_cell_shape() {
        let hw = hw_small();
        let signs: Vec<f32> = vec![1.0; 6 * 4];
        let cell = DeployedDense::new(&signs, 6, 4, vec![0.0; 4], vec![false; 4], &hw);
        let input = BitMap::from_bits(6, 1, 1, vec![Bit::One; 6]);
        let mut rng = DeviceRng::seed_from_u64(5);
        let out = cell.forward(&input, &mut rng);
        assert_eq!((out.c, out.h, out.w), (4, 1, 1));
        assert_eq!(out.bits(), &[Bit::One; 4]);
    }
}
