//! Event-driven fault-cone evaluation: incremental delta forward over a
//! cached clean activation trace.
//!
//! Every fault-facing consumer in the workspace — the ATPG detection
//! matrix, the four-engine fault-universe check, the digital robustness
//! campaigns — used to pay a **full** [`PackedModel::classify_planes`]
//! pass per fault class, even though a stuck cell or dead column perturbs
//! exactly one output column of one crossbar tile. This module is the
//! classic event-driven / PPSFP answer: evaluate the clean die once,
//! remember every stage's activations, and per fault recompute only the
//! *fault cone* — the dirtied output channels, then whatever actually
//! changed downstream.
//!
//! # Cache layout
//!
//! [`ActivationCache::new`] folds a candidate plane batch through the
//! pipeline once and records, per stage `l`:
//!
//! * `acts[l]` — each sample's packed *input* plane to stage `l`
//!   (`acts[0]` is the raw input batch, `acts[L]` the final feature
//!   planes the classifier head consumes);
//! * for conv stages, the per-sample im2col field matrix (one row per
//!   output pixel), so a single faulted channel re-votes against cached
//!   receptive fields instead of re-gathering them;
//! * the golden `(label, scores)` per sample — bit-identical to
//!   [`PackedModel::classify_planes`] on the clean model.
//!
//! The batch dimension is already bit-parallel (64/256 patterns per
//! word), so one cache serves parallel-pattern single-fault propagation
//! for free.
//!
//! # Quiescence rule
//!
//! A fault draw dirties a known channel set per stage
//! ([`DirtyChannels`], via
//! [`PackedTiledMatrix::fault_channels`](super::PackedTiledMatrix::fault_channels)).
//! [`PackedModel::delta_changed`] re-votes *only* those channels against
//! the cached stage inputs and diffs each re-voted bit against the cached
//! output:
//!
//! * no bit flips → the fault is unobservable for this sample *at this
//!   stage*; the sample stays on the cached trace (quiescent);
//! * some bit flips → the sample's perturbed plane propagates through
//!   the next stage by a full stage forward (on the faulted model, so
//!   downstream fault sites are honored), and drops back to the cached
//!   trace the moment its output re-converges;
//! * once no sample is perturbed and no dirty channel remains ahead, the
//!   evaluation terminates without touching downstream stages.
//!
//! Only samples still perturbed at the output are re-scored; everyone
//! else keeps the golden result. The full-forward engine stays alive as
//! the differential oracle — `tests/props.rs` proves the two engines
//! bit-identical over every fault class on random ragged geometries.
//!
//! # Consumers
//!
//! * `screening::detection_matrix` — one shared cache per ATPG run, one
//!   [`DirtyChannels::from_site`] + [`PackedModel::delta_changed`] per
//!   fault class.
//! * `equiv::DieChecker::check_fault_universe` — the delta splice is
//!   checked as a fifth engine against the faulted full forward.
//! * `robustness::run_sweep` — digital campaigns share one cache across
//!   all trials of the packed eval set and score via
//!   [`PackedModel::delta_accuracy_planes`].

use super::model::argmax;
use super::packed::PackedModel;
use super::pipeline::PackedLayer;
use aqfp_crossbar::faults::{InjectedFaults, StructuralFault};
use aqfp_sc::bitplane::packed_im2col;
use aqfp_sc::{BitPlane, PackedMatrix};

/// The clean activation trace of one candidate plane batch: per-stage
/// input planes, cached conv receptive fields, and the golden
/// classifications. Immutable once built — every fault evaluation borrows
/// it, none mutates it.
///
/// `PartialEq` compares the complete trace; the journal-interaction
/// tests lean on it to prove fault evaluation leaves the cache
/// bit-for-bit intact.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationCache {
    /// `acts[l][s]` = sample `s`'s packed input plane to stage `l`;
    /// `acts[layers.len()]` holds the final feature planes.
    acts: Vec<Vec<BitPlane>>,
    /// `shapes[l]` = the `[C, H, W]` shape of `acts[l]`.
    shapes: Vec<[usize; 3]>,
    /// Per conv stage: each sample's im2col field matrix (row = output
    /// pixel, width = `in_c · k · k`). `None` for non-conv stages.
    fields: Vec<Option<Vec<PackedMatrix>>>,
    /// Golden `(label, scores)` per sample, bit-identical to
    /// [`PackedModel::classify_planes`] on the clean model.
    golden: Vec<(usize, Vec<f32>)>,
}

impl ActivationCache {
    /// Evaluates the clean model once over `planes` and records the full
    /// activation trace.
    ///
    /// # Panics
    /// Panics if any plane's length does not match the model's input
    /// shape.
    pub fn new(model: &PackedModel, planes: &[BitPlane]) -> Self {
        let n = planes.len();
        let in_bits: usize = model.input_shape().iter().product();
        for p in planes {
            assert_eq!(p.len(), in_bits, "input plane length mismatch");
        }
        let mut acts: Vec<Vec<BitPlane>> = Vec::with_capacity(model.layers().len() + 1);
        let mut shapes = Vec::with_capacity(model.layers().len() + 1);
        let mut fields: Vec<Option<Vec<PackedMatrix>>> = Vec::with_capacity(model.layers().len());
        acts.push(planes.to_vec());
        let mut shape = model.input_shape();
        shapes.push(shape);
        for layer in model.layers() {
            let cur = acts.last().expect("trace starts with the input batch");
            let mut next = Vec::with_capacity(n);
            let stage_fields = match layer {
                PackedLayer::Conv(conv) => {
                    // Evaluate the conv stage explicitly so the gathered
                    // receptive fields survive for per-channel re-votes.
                    let [c, h, w] = shape;
                    let (_, k, stride, pad) = conv.geometry();
                    let mut fs = Vec::with_capacity(n);
                    for plane in cur {
                        let f = packed_im2col(plane, c, h, w, k, stride, pad, false);
                        next.push(conv.matrix().forward_matrix(&f).concat_rows());
                        fs.push(f);
                    }
                    Some(fs)
                }
                _ => {
                    for plane in cur {
                        let (out, _) = layer.forward(plane.clone(), shape);
                        next.push(out);
                    }
                    None
                }
            };
            shape = layer.out_shape(shape);
            shapes.push(shape);
            fields.push(stage_fields);
            acts.push(next);
        }
        let golden = acts
            .last()
            .expect("trace ends with the final planes")
            .iter()
            .map(|p| {
                let scores = model.classifier().scores_plane(p);
                (argmax(&scores), scores)
            })
            .collect();
        Self {
            acts,
            shapes,
            fields,
            golden,
        }
    }

    /// The number of cached samples.
    pub fn len(&self) -> usize {
        self.golden.len()
    }

    /// `true` when the cache holds no samples.
    pub fn is_empty(&self) -> bool {
        self.golden.is_empty()
    }

    /// The golden `(label, scores)` per sample — what the clean model
    /// returns from [`PackedModel::classify_planes`] on the cached batch.
    pub fn golden(&self) -> &[(usize, Vec<f32>)] {
        &self.golden
    }
}

/// The output channels a fault draw dirties, per pipeline stage — the
/// seed of the fault cone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtyChannels {
    per_layer: Vec<Vec<usize>>,
}

impl DirtyChannels {
    /// Maps a per-stage fault draw (as produced by
    /// [`PackedModel::draw_faults`]) to its dirtied output channels.
    ///
    /// # Panics
    /// Panics if `draws` does not line up with the model's stages (one
    /// entry per stage, empty on weight-free stages).
    pub fn from_draws(model: &PackedModel, draws: &[Vec<InjectedFaults>]) -> Self {
        assert_eq!(
            draws.len(),
            model.layers().len(),
            "draw / stage count mismatch"
        );
        let per_layer = model
            .layers()
            .iter()
            .zip(draws)
            .map(|(layer, faults)| match layer.matrix() {
                Some(m) => m.fault_channels(faults),
                None => {
                    assert!(faults.is_empty(), "fault draw on a weight-free stage");
                    Vec::new()
                }
            })
            .collect();
        Self { per_layer }
    }

    /// Maps one enumerated fault class on stage `layer` to its dirtied
    /// channels — the ATPG entry point: exactly one stage is dirty, with
    /// (for single-site faults) exactly one channel.
    ///
    /// # Panics
    /// Panics if `layer` is out of range or names a weight-free stage.
    pub fn from_site(model: &PackedModel, layer: usize, fault: &StructuralFault) -> Self {
        let m = model.layers()[layer]
            .matrix()
            .expect("fault sites target weighted stages");
        Self::from_layer_draws(model, layer, &fault.to_draws(m.tile_dims().len()))
    }

    /// Like [`Self::from_site`] but reusing an already-rendered per-die
    /// draw vector for stage `layer` — the ATPG detection loop renders
    /// the draws once for the journaled patch and hands them here rather
    /// than paying a second
    /// [`StructuralFault::to_draws`](aqfp_crossbar::faults::StructuralFault::to_draws)
    /// per class.
    ///
    /// # Panics
    /// Panics if `layer` is out of range, names a weight-free stage, or
    /// `draws` does not match the stage's tile count.
    pub fn from_layer_draws(model: &PackedModel, layer: usize, draws: &[InjectedFaults]) -> Self {
        let m = model.layers()[layer]
            .matrix()
            .expect("fault sites target weighted stages");
        let mut per_layer = vec![Vec::new(); model.layers().len()];
        per_layer[layer] = m.fault_channels(draws);
        Self { per_layer }
    }

    /// The dirty channels of stage `layer` (sorted, deduplicated).
    pub fn channels(&self, layer: usize) -> &[usize] {
        &self.per_layer[layer]
    }

    /// Total dirty channel count across all stages.
    pub fn total(&self) -> usize {
        self.per_layer.iter().map(Vec::len).sum()
    }

    /// `true` when no stage has a dirty channel (the draw was clean or
    /// fell outside every tile) — the fault cone is empty and the golden
    /// results stand as-is.
    pub fn is_empty(&self) -> bool {
        self.per_layer.iter().all(Vec::is_empty)
    }
}

impl PackedModel {
    /// Event-driven delta forward: evaluates the faulted model (`self`,
    /// with the fault draw already applied) against the cached clean
    /// trace and returns `(sample, (label, scores))` for **only** the
    /// samples whose final feature plane differs from the cache. Every
    /// other sample provably produces its golden result.
    ///
    /// Note that a changed plane does not imply a changed
    /// classification — the popcount scores can coincide — so detection
    /// logic must still diff the returned scores against
    /// [`ActivationCache::golden`].
    ///
    /// # Panics
    /// Panics if the cache or the dirty set was built for a different
    /// pipeline geometry.
    pub fn delta_changed(
        &self,
        cache: &ActivationCache,
        dirty: &DirtyChannels,
    ) -> Vec<(usize, (usize, Vec<f32>))> {
        let layers = self.layers();
        assert_eq!(
            cache.acts.len(),
            layers.len() + 1,
            "cache / pipeline stage count mismatch"
        );
        assert_eq!(
            dirty.per_layer.len(),
            layers.len(),
            "dirty set / pipeline stage count mismatch"
        );
        assert_eq!(
            cache.shapes[0],
            self.input_shape(),
            "cache built for a different input shape"
        );
        let n = cache.len();
        if n == 0 || dirty.is_empty() {
            return Vec::new();
        }
        // dirty_ahead[l]: does any stage >= l have dirty channels? Once a
        // perturbation quiesces with nothing dirty ahead, we can stop.
        let mut dirty_ahead = vec![false; layers.len() + 1];
        for l in (0..layers.len()).rev() {
            dirty_ahead[l] = dirty_ahead[l + 1] || !dirty.per_layer[l].is_empty();
        }
        // cur[s]: the faulted input plane to the current stage where it
        // differs from the cached trace; None = quiescent (on-trace).
        let mut cur: Vec<Option<BitPlane>> = vec![None; n];
        let mut n_dirty = 0usize;
        for (l, layer) in layers.iter().enumerate() {
            if n_dirty == 0 && !dirty_ahead[l] {
                break;
            }
            let chans = &dirty.per_layer[l];
            if n_dirty == 0 && chans.is_empty() {
                continue;
            }
            let shape = cache.shapes[l];
            // This stage's perturbed outputs; `cur` keeps marking which
            // *inputs* were perturbed until both passes ran.
            let mut next: Vec<Option<BitPlane>> = vec![None; n];
            // On-trace inputs: re-vote only the dirty channels against
            // the cached activations and splice any flipped bits into a
            // copy of the cached output. Channel-major so each channel's
            // evaluator (weight row, SWAR biases, thresholds) is hoisted
            // once per channel, not rebuilt per sample (or per pixel).
            if !chans.is_empty() {
                match layer {
                    PackedLayer::Linear(lin) => {
                        for &ch in chans.iter() {
                            let eval = lin.matrix().channel_eval(ch);
                            for s in 0..n {
                                if cur[s].is_some() {
                                    continue;
                                }
                                let bit = eval.bit(cache.acts[l][s].words());
                                let clean = &cache.acts[l + 1][s];
                                if bit != clean.get(ch) {
                                    next[s].get_or_insert_with(|| clean.clone()).set(ch, bit);
                                }
                            }
                        }
                    }
                    PackedLayer::Conv(conv) => {
                        let fields = cache.fields[l]
                            .as_ref()
                            .expect("conv stage caches its im2col fields");
                        for &ch in chans.iter() {
                            let eval = conv.matrix().channel_eval(ch);
                            for s in 0..n {
                                if cur[s].is_some() {
                                    continue;
                                }
                                let field = &fields[s];
                                let px_count = field.rows();
                                let clean = &cache.acts[l + 1][s];
                                for px in 0..px_count {
                                    let bit = eval.bit(field.row_words(px));
                                    let idx = ch * px_count + px;
                                    if bit != clean.get(idx) {
                                        next[s].get_or_insert_with(|| clean.clone()).set(idx, bit);
                                    }
                                }
                            }
                        }
                    }
                    PackedLayer::Pool(_) | PackedLayer::Flatten => {
                        unreachable!("weight-free stages have no dirty channels")
                    }
                }
            }
            // Perturbed inputs: full stage forward on the faulted model
            // (captures this stage's own fault sites too), dropping back
            // to the cached trace on re-convergence.
            for s in 0..n {
                if let Some(plane) = cur[s].take() {
                    let (out, _) = layer.forward(plane, shape);
                    if out != cache.acts[l + 1][s] {
                        next[s] = Some(out);
                    }
                }
            }
            n_dirty = next.iter().filter(|p| p.is_some()).count();
            cur = next;
        }
        cur.iter()
            .enumerate()
            .filter_map(|(s, plane)| {
                plane.as_ref().map(|p| {
                    let scores = self.classifier().scores_plane(p);
                    (s, (argmax(&scores), scores))
                })
            })
            .collect()
    }

    /// Full-vector twin of [`Self::delta_changed`]: the faulted
    /// classifications for every cached sample, bit-identical to
    /// [`Self::classify_planes`] on the faulted model over the cached
    /// batch — quiescent samples return their golden entry by reference
    /// to the cache.
    pub fn delta_classify_planes(
        &self,
        cache: &ActivationCache,
        dirty: &DirtyChannels,
    ) -> Vec<(usize, Vec<f32>)> {
        let mut out = cache.golden.clone();
        for (s, result) in self.delta_changed(cache, dirty) {
            out[s] = result;
        }
        out
    }

    /// Top-1 accuracy of the faulted model over the cached batch —
    /// bit-identical to [`Self::accuracy_planes`] on the same planes, but
    /// only the fault cone is re-evaluated. The digital robustness
    /// campaigns score every trial through this.
    ///
    /// # Panics
    /// Panics if the cache is empty or `labels` does not match it.
    pub fn delta_accuracy_planes(
        &self,
        cache: &ActivationCache,
        dirty: &DirtyChannels,
        labels: &[usize],
    ) -> f64 {
        assert_eq!(cache.len(), labels.len(), "plane/label count mismatch");
        assert!(!cache.is_empty(), "accuracy over zero samples");
        let mut correct = cache
            .golden
            .iter()
            .zip(labels)
            .filter(|((p, _), &l)| *p == l)
            .count() as i64;
        for (s, (pred, _)) in self.delta_changed(cache, dirty) {
            correct += (pred == labels[s]) as i64 - (cache.golden[s].0 == labels[s]) as i64;
        }
        correct as f64 / cache.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardwareConfig;
    use crate::deploy::{deploy, BitMap};
    use crate::spec::NetSpec;
    use aqfp_crossbar::faults::{enumerate_fault_universe, FaultModel, PatchJournal};
    use aqfp_device::{DeviceRng, SeedableRng};

    fn packed(spec: &NetSpec, hw: &HardwareConfig, seed: u64) -> PackedModel {
        let model = spec.build_software(hw, seed);
        deploy(spec, &model, hw).expect("deploys").to_packed()
    }

    fn sample_planes(model: &PackedModel, n: usize, salt: usize) -> Vec<BitPlane> {
        let [c, h, w] = model.input_shape();
        (0..n)
            .map(|s| {
                let bits: Vec<aqfp_device::Bit> = (0..c * h * w)
                    .map(|i| aqfp_device::Bit::from_bool((i * 7 + s * 13 + salt) % 5 < 2))
                    .collect();
                BitMap::from_bits(c, h, w, bits).to_plane()
            })
            .collect()
    }

    fn mlp_under_test() -> PackedModel {
        let hw = HardwareConfig {
            crossbar_rows: 8,
            crossbar_cols: 4,
            ..Default::default()
        };
        packed(&NetSpec::mlp(&[1, 6, 6], &[12], 5), &hw, 11)
    }

    fn conv_under_test() -> PackedModel {
        let hw = HardwareConfig {
            crossbar_rows: 16,
            crossbar_cols: 8,
            ..Default::default()
        };
        packed(&NetSpec::vgg_small([1, 8, 8], 4, 6), &hw, 5)
    }

    #[test]
    fn cache_golden_matches_classify_planes() {
        for model in [mlp_under_test(), conv_under_test()] {
            let planes = sample_planes(&model, 9, 3);
            let cache = ActivationCache::new(&model, &planes);
            assert_eq!(cache.len(), planes.len());
            assert_eq!(cache.golden(), model.classify_planes(&planes).as_slice());
        }
    }

    #[test]
    fn delta_matches_full_forward_over_the_fault_universe() {
        for model in [mlp_under_test(), conv_under_test()] {
            let planes = sample_planes(&model, 6, 1);
            let cache = ActivationCache::new(&model, &planes);
            let mut journal = PatchJournal::new();
            for (layer, stage) in model.layers().iter().enumerate() {
                let Some(m) = stage.matrix() else { continue };
                let dims = m.tile_dims();
                for fault in enumerate_fault_universe(&dims) {
                    let mut faulted = model.clone();
                    faulted.apply_layer_faults_journaled(
                        layer,
                        &fault.to_draws(dims.len()),
                        &mut journal,
                    );
                    let dirty = DirtyChannels::from_site(&model, layer, &fault);
                    assert_eq!(
                        faulted.delta_classify_planes(&cache, &dirty),
                        faulted.classify_planes(&planes),
                        "stage {layer} fault {fault:?}"
                    );
                    faulted.revert_faults(&mut journal);
                    assert_eq!(faulted, model, "revert must restore the die");
                }
            }
        }
    }

    #[test]
    fn delta_accuracy_matches_full_accuracy_under_random_draws() {
        let model = mlp_under_test();
        let planes = sample_planes(&model, 16, 2);
        let labels: Vec<usize> = (0..planes.len()).map(|s| s % 5).collect();
        let cache = ActivationCache::new(&model, &planes);
        let fm = FaultModel::new(0.02, 0.01).expect("valid rates");
        let mut rng = DeviceRng::seed_from_u64(99);
        let mut journal = PatchJournal::new();
        for trial in 0..20 {
            let draws = model.draw_faults(&fm, &mut rng);
            let dirty = DirtyChannels::from_draws(&model, &draws);
            let mut faulted = model.clone();
            faulted.apply_draws_journaled(&draws, &mut journal);
            assert_eq!(
                faulted.delta_accuracy_planes(&cache, &dirty, &labels),
                faulted.accuracy_planes(&planes, &labels),
                "trial {trial}"
            );
            faulted.revert_faults(&mut journal);
        }
    }

    #[test]
    fn empty_dirty_set_returns_no_changes() {
        let model = mlp_under_test();
        let planes = sample_planes(&model, 4, 5);
        let cache = ActivationCache::new(&model, &planes);
        let dirty = DirtyChannels::from_draws(
            &model,
            &model
                .layers()
                .iter()
                .map(|_| Vec::new())
                .collect::<Vec<_>>(),
        );
        assert!(dirty.is_empty());
        assert_eq!(dirty.total(), 0);
        assert!(model.delta_changed(&cache, &dirty).is_empty());
        assert_eq!(
            model.delta_classify_planes(&cache, &dirty),
            cache.golden().to_vec()
        );
    }

    #[test]
    fn delta_eval_leaves_cache_and_model_intact_after_revert() {
        let model = conv_under_test();
        let planes = sample_planes(&model, 5, 7);
        let cache = ActivationCache::new(&model, &planes);
        let snapshot = cache.clone();
        let mut die = model.clone();
        let mut journal = PatchJournal::new();
        let stage = model
            .layers()
            .iter()
            .position(|l| l.matrix().is_some())
            .expect("a weighted stage exists");
        let dims = model.layers()[stage].matrix().unwrap().tile_dims();
        let fault = enumerate_fault_universe(&dims)
            .into_iter()
            .next()
            .expect("non-empty universe");
        die.apply_layer_faults_journaled(stage, &fault.to_draws(dims.len()), &mut journal);
        let dirty = DirtyChannels::from_site(&model, stage, &fault);
        let _ = die.delta_changed(&cache, &dirty);
        die.revert_faults(&mut journal);
        assert_eq!(die, model, "patch → delta eval → revert is bit-for-bit");
        assert_eq!(cache, snapshot, "fault evaluation never mutates the cache");
    }
}
