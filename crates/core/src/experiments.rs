//! Experiment drivers for the paper's figures and tables.
//!
//! Each driver is parameterized by an [`ExperimentScale`] so the same code
//! runs as a fast smoke test (`quick`) or at full reproduction scale
//! (`full`, used by the `tablegen` binary). The synthetic-dataset
//! substitution is documented in DESIGN.md §2: every experiment here
//! measures *relative* accuracy across hardware configurations, which is
//! what the paper's Figs. 10–11 and the "Ours" table rows report.

use crate::config::HardwareConfig;
use crate::deploy::deploy;
use crate::energy::{self, EnergyReport};
use crate::spec::NetSpec;
use crate::trainer::{TrainConfig, Trainer};
use aqfp_device::{DeviceRng, SeedableRng};
use bnn_datasets::{digits, objects, Dataset, SynthConfig};
use serde::{Deserialize, Serialize};

/// Size/effort knobs shared by all experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Samples generated per class.
    pub samples_per_class: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Test samples evaluated on deployed hardware (per configuration).
    pub eval_samples: usize,
    /// First-stage channel width of the VGG-Small variant.
    pub width: usize,
    /// Hidden sizes of the MLP.
    pub mlp_hidden: [usize; 2],
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// Fast smoke-test scale (a couple of minutes for the full battery).
    pub fn quick() -> Self {
        Self {
            samples_per_class: 60,
            epochs: 15,
            eval_samples: 50,
            width: 8,
            mlp_hidden: [64, 32],
            seed: 7,
        }
    }

    /// Full reproduction scale (tens of minutes on one core; used by
    /// `tablegen`).
    pub fn full() -> Self {
        Self {
            samples_per_class: 80,
            epochs: 30,
            eval_samples: 100,
            width: 8,
            mlp_hidden: [128, 64],
            seed: 7,
        }
    }

    fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: 32,
            lr: 0.02,
            warmup_epochs: (self.epochs / 5).max(1),
            // Deterministic curriculum for the first ~2/3 of training, then
            // adapt to the sampled device law (see TrainConfig docs).
            noise_warmup_epochs: self.epochs * 2 / 3,
            seed: self.seed,
            ..Default::default()
        }
    }

    /// The SynthObjects dataset split for CIFAR-10-class experiments.
    pub fn objects_data(&self) -> (Dataset, Dataset) {
        objects::generate_objects(&SynthConfig {
            samples_per_class: self.samples_per_class,
            seed: self.seed,
            ..Default::default()
        })
        .split(0.25)
    }

    /// The SynthDigits dataset split for MNIST-class experiments.
    pub fn digits_data(&self) -> (Dataset, Dataset) {
        digits::generate_digits(&SynthConfig {
            samples_per_class: self.samples_per_class,
            seed: self.seed,
            ..Default::default()
        })
        .split(0.25)
    }
}

/// Trains a model for `spec` under `hw` and returns it with its final
/// training statistics.
pub fn train_model(
    spec: &NetSpec,
    hw: &HardwareConfig,
    scale: &ExperimentScale,
    train: &Dataset,
) -> (bnn_nn::Sequential, f64) {
    let mut model = spec.build_software(hw, scale.seed);
    let trainer = Trainer::new(scale.train_config());
    let history = trainer.train(&mut model, train);
    let final_acc = history.last().map_or(0.0, |h| h.train_accuracy);
    (model, final_acc)
}

/// One point of the Fig. 10 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitstreamPoint {
    /// Square crossbar size.
    pub crossbar: usize,
    /// SC bit-stream length.
    pub bitstream_len: usize,
    /// Deployed (hardware-faithful) accuracy.
    pub accuracy: f64,
}

/// Fig. 10: accuracy vs SC bit-stream length, one series per crossbar size.
/// Trains once per crossbar size (L only affects deployment), then deploys
/// at every length.
pub fn bitstream_sweep(
    scale: &ExperimentScale,
    lengths: &[usize],
    crossbar_sizes: &[usize],
    grayzone_ua: f64,
) -> Vec<BitstreamPoint> {
    let (train, test) = scale.objects_data();
    let spec = NetSpec::vgg_small([3, 16, 16], scale.width, 10);
    let mut out = Vec::new();
    for &cs in crossbar_sizes {
        let hw = HardwareConfig {
            crossbar_rows: cs,
            crossbar_cols: cs,
            grayzone_ua,
            ..Default::default()
        };
        let (model, _) = train_model(&spec, &hw, scale, &train);
        for &len in lengths {
            let hw_l = HardwareConfig {
                bitstream_len: len,
                ..hw
            };
            let deployed = deploy(&spec, &model, &hw_l).expect("spec matches model");
            let mut rng = DeviceRng::seed_from_u64(scale.seed ^ (len as u64) << 8 ^ cs as u64);
            let accuracy = deployed.accuracy(&test, &mut rng, Some(scale.eval_samples));
            out.push(BitstreamPoint {
                crossbar: cs,
                bitstream_len: len,
                accuracy,
            });
        }
    }
    out
}

/// One point of the Fig. 11 surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// Square crossbar size.
    pub crossbar: usize,
    /// Gray-zone width ΔIin in µA.
    pub grayzone_ua: f64,
    /// Deployed accuracy (bit-stream length 1, as in the paper's figure).
    pub accuracy: f64,
}

/// Fig. 11: deployed accuracy over the (ΔIin, crossbar size) grid with
/// bit-stream length 1. Trains per grid point (training is config-aware).
pub fn grid_sweep(
    scale: &ExperimentScale,
    crossbar_sizes: &[usize],
    grayzones_ua: &[f64],
) -> Vec<GridPoint> {
    let (train, test) = scale.objects_data();
    let spec = NetSpec::vgg_small([3, 16, 16], scale.width, 10);
    let mut out = Vec::new();
    for &cs in crossbar_sizes {
        for &gz in grayzones_ua {
            let hw = HardwareConfig {
                crossbar_rows: cs,
                crossbar_cols: cs,
                grayzone_ua: gz,
                bitstream_len: 1,
                ..Default::default()
            };
            let (model, _) = train_model(&spec, &hw, scale, &train);
            let deployed = deploy(&spec, &model, &hw).expect("spec matches model");
            let mut rng = DeviceRng::seed_from_u64(scale.seed ^ (gz.to_bits() >> 3) ^ cs as u64);
            let accuracy = deployed.accuracy(&test, &mut rng, Some(scale.eval_samples));
            out.push(GridPoint {
                crossbar: cs,
                grayzone_ua: gz,
                accuracy,
            });
        }
    }
    out
}

/// One "Ours" row of Table 2 / Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OursRow {
    /// Configuration label.
    pub label: String,
    /// Square crossbar size.
    pub crossbar: usize,
    /// SC bit-stream length.
    pub bitstream_len: usize,
    /// Deployed accuracy (fraction).
    pub accuracy: f64,
    /// Software-reference accuracy of the same trained model (fraction).
    pub software_accuracy: f64,
    /// Energy/performance estimate.
    pub energy: EnergyReport,
}

/// The default Table 2 configuration points `(Cs, ΔIin µA, L)`, from the
/// accuracy-first operating point to the efficiency-first one (the paper's
/// four constraint levels).
pub const TABLE2_CONFIGS: [(usize, f64, usize); 4] =
    [(8, 8.0, 32), (8, 8.0, 16), (16, 4.0, 8), (36, 1.6, 4)];

/// Table 2: the "Ours (VGG-Small)" rows across energy-efficiency
/// constraints. Each config is `(crossbar size, ΔIin µA, bit-stream len)`
/// — chosen along the co-optimizer's Pareto front from accurate/expensive
/// to cheap/noisy. (The ResNet variant is evaluated in software and costed
/// structurally; see DESIGN.md.)
pub fn table2_ours(scale: &ExperimentScale, configs: &[(usize, f64, usize)]) -> Vec<OursRow> {
    let (train, test) = scale.objects_data();
    let spec = NetSpec::vgg_small([3, 16, 16], scale.width, 10);
    configs
        .iter()
        .map(|&(cs, grayzone_ua, len)| {
            let hw = HardwareConfig {
                crossbar_rows: cs,
                crossbar_cols: cs,
                grayzone_ua,
                bitstream_len: len,
                ..Default::default()
            };
            let (mut model, _) = train_model(&spec, &hw, scale, &train);
            let trainer = Trainer::new(scale.train_config());
            let software_accuracy = trainer.evaluate(&mut model, &test);
            let deployed = deploy(&spec, &model, &hw).expect("spec matches model");
            let mut rng = DeviceRng::seed_from_u64(scale.seed ^ (cs * 131 + len) as u64);
            let accuracy = deployed.accuracy(&test, &mut rng, Some(scale.eval_samples));
            OursRow {
                label: format!("Ours (VGG-Small, {cs}x{cs}, ΔI={grayzone_ua}µA, L={len})"),
                crossbar: cs,
                bitstream_len: len,
                accuracy,
                software_accuracy,
                energy: energy::estimate(&spec, &hw),
            }
        })
        .collect()
}

/// Table 3: the "Ours (MLP)" row on the MNIST-class dataset.
pub fn table3_ours(scale: &ExperimentScale) -> OursRow {
    let (train, test) = scale.digits_data();
    let spec = NetSpec::mlp(
        &[1, 16, 16],
        &[scale.mlp_hidden[0], scale.mlp_hidden[1]],
        10,
    );
    // The accuracy-first co-optimized operating point (see TABLE2_CONFIGS).
    let (cs, gz, len) = TABLE2_CONFIGS[0];
    let hw = HardwareConfig {
        crossbar_rows: cs,
        crossbar_cols: cs,
        grayzone_ua: gz,
        bitstream_len: len,
        ..Default::default()
    };
    let (mut model, _) = train_model(&spec, &hw, scale, &train);
    let trainer = Trainer::new(scale.train_config());
    let software_accuracy = trainer.evaluate(&mut model, &test);
    let deployed = deploy(&spec, &model, &hw).expect("spec matches model");
    let mut rng = DeviceRng::seed_from_u64(scale.seed ^ 0xAB);
    let accuracy = deployed.accuracy(&test, &mut rng, Some(scale.eval_samples));
    OursRow {
        label: "Ours (MLP)".to_string(),
        crossbar: hw.crossbar_rows,
        bitstream_len: hw.bitstream_len,
        accuracy,
        software_accuracy,
        energy: energy::estimate(&spec, &hw),
    }
}

/// The Table 2 "Ours (ResNet-18)" row. The residual skip adder stays
/// real-valued (Bi-Real convention), which the crossbar mapper does not
/// cover, so the accuracy is the randomized *software* evaluation (the
/// training law still models the device) and the energy estimate is
/// structural — matching how the paper reports this row (an accuracy and
/// efficiency claim, not a new datapath).
pub fn table2_resnet(scale: &ExperimentScale) -> OursRow {
    let (train, test) = scale.objects_data();
    let spec = NetSpec::resnet_small([3, 16, 16], scale.width, 10);
    let (cs, gz, len) = TABLE2_CONFIGS[0];
    let hw = HardwareConfig {
        crossbar_rows: cs,
        crossbar_cols: cs,
        grayzone_ua: gz,
        bitstream_len: len,
        ..Default::default()
    };
    let (mut model, _) = train_model(&spec, &hw, scale, &train);
    let trainer = Trainer::new(scale.train_config());
    let software_accuracy = trainer.evaluate(&mut model, &test);
    OursRow {
        label: format!("Ours (ResNet, {cs}x{cs}, ΔI={gz}µA, L={len}, software eval)"),
        crossbar: cs,
        bitstream_len: len,
        accuracy: software_accuracy,
        software_accuracy,
        energy: energy::estimate(&spec, &hw),
    }
}

/// One point of the fault-robustness sweep (extension experiment: the
/// paper motivates limited crossbar scalability partly by "immature
/// manufacturing technology"; this measures how gracefully accuracy
/// degrades with fabrication defects).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPoint {
    /// Stuck LiM-cell rate.
    pub stuck_cell_rate: f64,
    /// Defects drawn across the whole deployment.
    pub defects: usize,
    /// Deployed accuracy with the defects.
    pub accuracy: f64,
}

/// Sweeps deployed accuracy against the stuck-cell defect rate (dead-column
/// rate follows at 1/10 of it). One model is trained once; each rate gets a
/// fresh fault draw on a fresh deployment.
pub fn fault_sweep(scale: &ExperimentScale, rates: &[f64]) -> Vec<FaultPoint> {
    let (train, test) = scale.objects_data();
    let spec = NetSpec::vgg_small([3, 16, 16], scale.width, 10);
    let (cs, gz, len) = TABLE2_CONFIGS[1];
    let hw = HardwareConfig {
        crossbar_rows: cs,
        crossbar_cols: cs,
        grayzone_ua: gz,
        bitstream_len: len,
        ..Default::default()
    };
    let (model, _) = train_model(&spec, &hw, scale, &train);
    rates
        .iter()
        .map(|&rate| {
            let mut deployed = deploy(&spec, &model, &hw).expect("spec matches model");
            let fm = aqfp_crossbar::faults::FaultModel::new(rate, rate / 10.0)
                .expect("sweep rates are probabilities");
            let mut rng = DeviceRng::seed_from_u64(scale.seed ^ rate.to_bits());
            let defects = deployed.inject_faults(&fm, &mut rng);
            let accuracy = deployed.accuracy(&test, &mut rng, Some(scale.eval_samples));
            FaultPoint {
                stuck_cell_rate: rate,
                defects,
                accuracy,
            }
        })
        .collect()
}

/// Which deployed workload a Monte Carlo robustness campaign runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RobustnessWorkload {
    /// The MNIST-class digits MLP.
    DigitsMlp,
    /// The CIFAR-class objects VGG-Small.
    ObjectsVgg,
}

impl RobustnessWorkload {
    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RobustnessWorkload::DigitsMlp => "digits MLP",
            RobustnessWorkload::ObjectsVgg => "objects VGG-Small",
        }
    }
}

/// Runs a Monte Carlo robustness campaign on the packed deploy engine
/// (see [`crate::robustness`]): trains the workload once, deploys and
/// lowers it once, then measures the accuracy distribution of
/// `cfg.trials` independent fault draws per grid point. Where
/// [`fault_sweep`] reports a single draw per rate through the slow
/// stochastic engine, this driver reports mean/min/quantiles per rate at
/// packed-engine speed.
///
/// The operating point is deliberately *near-deterministic* (32×32
/// crossbars, a narrow 0.4 µA gray-zone): the fault-only campaign
/// evaluates the gray-zone → 0 digital limit, so campaigns train where
/// that limit is most faithful and heavy-tiling partial-sum saturation
/// (which would otherwise dominate the fault signal) stays moderate.
///
/// A `cfg` with a variation grid
/// ([`SweepConfig::with_variation_grid`](crate::robustness::SweepConfig::with_variation_grid))
/// turns this into a **variation campaign**: every
/// `variation × fault rate` point is measured through the packed
/// *stochastic* engine, so gray-zone widening (width scales, temperature
/// drift) and attenuation drift show up as genuine SC switching noise on
/// top of the fault distribution — the per-trial parameter-variation axis
/// thermal-cycling reliability studies sweep.
pub fn robustness_campaign(
    scale: &ExperimentScale,
    workload: RobustnessWorkload,
    cfg: &crate::robustness::SweepConfig,
) -> crate::robustness::RobustnessReport {
    let (packed, eval) = robustness_workload(scale, workload, cfg.eval_samples);
    crate::robustness::run_sweep(&packed, &eval, cfg)
}

/// The one-time setup of [`robustness_campaign`] — trains the workload,
/// deploys and lowers it at the campaign operating point, and interleaves
/// the (class-grouped) test split so a truncated per-trial evaluation of
/// `eval_samples` covers every class. Split out so campaign drivers that
/// measure several sweep configurations over the same workload (e.g. the
/// robustness bench timing both [`RngMode`](crate::deploy::RngMode)
/// disciplines) train once instead of once per campaign.
pub fn robustness_workload(
    scale: &ExperimentScale,
    workload: RobustnessWorkload,
    eval_samples: Option<usize>,
) -> (crate::deploy::PackedModel, bnn_datasets::Dataset) {
    let hw = HardwareConfig {
        crossbar_rows: 32,
        crossbar_cols: 32,
        grayzone_ua: 0.4,
        bitstream_len: 16,
        ..Default::default()
    };
    let (spec, (train, test)) = match workload {
        RobustnessWorkload::DigitsMlp => (
            NetSpec::mlp(
                &[1, 16, 16],
                &[scale.mlp_hidden[0], scale.mlp_hidden[1]],
                10,
            ),
            scale.digits_data(),
        ),
        RobustnessWorkload::ObjectsVgg => (
            NetSpec::vgg_small([3, 16, 16], scale.width, 10),
            scale.objects_data(),
        ),
    };
    let (model, _) = train_model(&spec, &hw, scale, &train);
    let deployed = deploy(&spec, &model, &hw).expect("spec matches model");
    let eval = crate::robustness::interleaved_eval_set(&test, eval_samples);
    (deployed.to_packed(), eval)
}

/// One point of the operating-temperature sweep (extension experiment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemperaturePoint {
    /// Operating temperature in kelvin.
    pub temperature_k: f64,
    /// The resulting gray-zone width in µA (thermal + quantum noise).
    pub grayzone_ua: f64,
    /// Deployed accuracy at this temperature.
    pub accuracy: f64,
}

/// Sweeps deployed accuracy against operating temperature: the gray-zone
/// width follows the calibrated thermal/quantum noise model of
/// `aqfp_device::noise` (Section 4.2's Walls-et-al. citation), so warming
/// the cryostat widens every neuron's randomized band. One model is trained
/// at the 4.2 K point and deployed across temperatures — the *mismatch*
/// experiment an operator would care about.
pub fn temperature_sweep(scale: &ExperimentScale, temperatures_k: &[f64]) -> Vec<TemperaturePoint> {
    let (train, test) = scale.objects_data();
    let spec = NetSpec::vgg_small([3, 16, 16], scale.width, 10);
    let noise = aqfp_device::noise::NoiseModel::calibrated();
    let (cs, _, len) = TABLE2_CONFIGS[1];
    let hw_train = HardwareConfig {
        crossbar_rows: cs,
        crossbar_cols: cs,
        grayzone_ua: noise.grayzone_width_ua(aqfp_device::consts::OPERATING_TEMPERATURE_K),
        bitstream_len: len,
        ..Default::default()
    };
    let (model, _) = train_model(&spec, &hw_train, scale, &train);
    temperatures_k
        .iter()
        .map(|&t| {
            let grayzone_ua = noise.grayzone_width_ua(t);
            let hw = HardwareConfig {
                grayzone_ua,
                ..hw_train
            };
            let deployed = deploy(&spec, &model, &hw).expect("spec matches model");
            let mut rng = DeviceRng::seed_from_u64(scale.seed ^ t.to_bits());
            let accuracy = deployed.accuracy(&test, &mut rng, Some(scale.eval_samples));
            TemperaturePoint {
                temperature_k: t,
                grayzone_ua,
                accuracy,
            }
        })
        .collect()
}

/// Result of the randomized-aware-training ablation (Contribution #1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AwareAblation {
    /// Deployed accuracy of the AQFP-aware-trained model.
    pub aware_accuracy: f64,
    /// Deployed accuracy of a conventionally trained model (deterministic
    /// sign binarizer) on the *same* hardware.
    pub naive_accuracy: f64,
}

/// Trains one model with the randomized-aware law and one with the plain
/// sign/STE, then deploys both on the same (deliberately noisy) hardware.
pub fn ablation_aware_training(scale: &ExperimentScale) -> AwareAblation {
    let (train, test) = scale.objects_data();
    let spec = NetSpec::vgg_small([3, 16, 16], scale.width, 10);
    // A stressful configuration: large crossbars (deep in the attenuated
    // regime) with a minimal observation window — where awareness matters
    // most (the Fig. 11 cliff).
    let hw = HardwareConfig {
        crossbar_rows: 72,
        crossbar_cols: 72,
        grayzone_ua: 1.6,
        bitstream_len: 2,
        ..Default::default()
    };
    let trainer = Trainer::new(scale.train_config());

    let mut aware_model = spec.build_software(&hw, scale.seed);
    trainer.train(&mut aware_model, &train);
    let deployed = deploy(&spec, &aware_model, &hw).expect("spec matches model");
    let mut rng = DeviceRng::seed_from_u64(scale.seed ^ 0x11);
    let aware_accuracy = deployed.accuracy(&test, &mut rng, Some(scale.eval_samples));

    // Naive: identical spec/seed/recipe but the conventional deterministic
    // sign/STE binarizer — what a non-co-designed flow would produce.
    let mut naive_model = spec.build_software_with(bnn_nn::Binarizer::Deterministic, scale.seed);
    trainer.train(&mut naive_model, &train);
    let deployed = deploy(&spec, &naive_model, &hw).expect("spec matches model");
    let mut rng = DeviceRng::seed_from_u64(scale.seed ^ 0x11);
    let naive_accuracy = deployed.accuracy(&test, &mut rng, Some(scale.eval_samples));

    AwareAblation {
        aware_accuracy,
        naive_accuracy,
    }
}

/// Result of the approximate-parallel-counter ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproxCounterAblation {
    /// Deployed accuracy with exact APCs.
    pub exact_accuracy: f64,
    /// Deployed accuracy with Kim-style approximate APCs.
    pub approx_accuracy: f64,
    /// Energy report with exact APCs.
    pub exact_energy: EnergyReport,
    /// Energy report with approximate APCs.
    pub approx_energy: EnergyReport,
}

/// Deploys one trained model with exact vs approximate parallel counters
/// (paper Section 4.3's reference \[41\]). The approximation sheds
/// accumulation-module JJs; its counting error is unbiased only for
/// *balanced* streams, and SupeRBNN's inter-crossbar column streams are
/// often saturated (deterministic regime), where the error acquires a
/// systematic bias. The measured accuracy gap quantifies why this
/// reproduction keeps the exact Wallace APC as the default.
pub fn ablation_approx_counter(scale: &ExperimentScale) -> ApproxCounterAblation {
    use aqfp_sc::accumulate::CounterKind;

    let (train, test) = scale.digits_data();
    let spec = NetSpec::mlp(
        &[1, 16, 16],
        &[scale.mlp_hidden[0], scale.mlp_hidden[1]],
        10,
    );
    // A multi-tile configuration so inter-crossbar accumulation (where the
    // counter sits) actually carries the decision.
    let hw_exact = HardwareConfig {
        crossbar_rows: 8,
        crossbar_cols: 8,
        grayzone_ua: 8.0,
        bitstream_len: 16,
        ..Default::default()
    };
    let hw_approx = HardwareConfig {
        counter: CounterKind::Approximate,
        ..hw_exact
    };

    let (model, _) = train_model(&spec, &hw_exact, scale, &train);
    let run = |hw: &HardwareConfig| {
        let deployed = deploy(&spec, &model, hw).expect("spec matches model");
        let mut rng = DeviceRng::seed_from_u64(scale.seed ^ 0xA9C);
        deployed.accuracy(&test, &mut rng, Some(scale.eval_samples))
    };
    ApproxCounterAblation {
        exact_accuracy: run(&hw_exact),
        approx_accuracy: run(&hw_approx),
        exact_energy: energy::estimate(&spec, &hw_exact),
        approx_energy: energy::estimate(&spec, &hw_approx),
    }
}

/// One stream-length point of the pure-SC baseline sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScAqfpPoint {
    /// Stochastic stream length `L`.
    pub stream_len: usize,
    /// Accuracy of the APC-accumulated pure-SC datapath (SC-AQFP style).
    pub apc_accuracy: f64,
    /// Accuracy of the fully stream-domain MUX + `Stanh` datapath.
    pub mux_accuracy: f64,
}

/// Result of the pure-SC baseline comparison (paper Section 2.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScAqfpSweep {
    /// Exact float accuracy of the underlying MLP (the ceiling).
    pub float_accuracy: f64,
    /// Accuracy at each simulated stream length, both datapaths.
    pub points: Vec<ScAqfpPoint>,
}

fn flatten_images(data: &Dataset) -> (Vec<Vec<f32>>, Vec<usize>) {
    let [c, h, w] = data.image_shape();
    let per = c * h * w;
    let inputs = (0..data.len())
        .map(|i| data.images.data()[i * per..(i + 1) * per].to_vec())
        .collect();
    (inputs, data.labels.clone())
}

/// Measures the stream-length requirement of the *pure* stochastic-
/// computing baseline the paper contrasts itself against (Section 2.3:
/// SC-AQFP "requires a pretty large bit-stream length (i.e., 256∼2048)"
/// while SupeRBNN needs 16∼32).
///
/// Trains a float MLP (no batch norm — SC-AQFP's stated limitation) on
/// the MNIST-class dataset and deploys it on the pure-SC datapath of
/// [`baselines::sc_dnn`] at each length in `lengths`.
pub fn scaqfp_sweep(scale: &ExperimentScale, lengths: &[usize]) -> ScAqfpSweep {
    use baselines::sc_dnn::{FloatMlp, PreparedScMlp, ScAccumulator, ScMlpConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng as _;

    let (train, test) = scale.digits_data();
    let (train_x, train_y) = flatten_images(&train);
    let (test_x, test_y) = flatten_images(&test);

    let cfg = ScMlpConfig {
        hidden: scale.mlp_hidden.to_vec(),
        epochs: scale.epochs,
        batch_size: 32,
        lr: 0.05,
        momentum: 0.9,
        seed: scale.seed,
    };
    let mlp = FloatMlp::train(&train_x, &train_y, 10, &cfg);
    let float_accuracy = mlp.accuracy_float(&test_x, &test_y);

    let points = lengths
        .iter()
        .map(|&stream_len| {
            let prepared = PreparedScMlp::new(&mlp, stream_len, scale.seed ^ 0x5C0);
            let mut rng = StdRng::seed_from_u64(scale.seed ^ stream_len as u64);
            let apc_accuracy = prepared.accuracy(
                &test_x,
                &test_y,
                ScAccumulator::Apc,
                Some(scale.eval_samples),
                &mut rng,
            );
            let mux_accuracy = prepared.accuracy(
                &test_x,
                &test_y,
                ScAccumulator::MuxTree,
                Some(scale.eval_samples),
                &mut rng,
            );
            ScAqfpPoint {
                stream_len,
                apc_accuracy,
                mux_accuracy,
            }
        })
        .collect();

    ScAqfpSweep {
        float_accuracy,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table3_pipeline_runs() {
        let scale = ExperimentScale::quick();
        let row = table3_ours(&scale);
        assert!((0.0..=1.0).contains(&row.accuracy));
        assert!(row.energy.tops_per_watt > 0.0);
    }

    #[test]
    fn approx_counter_ablation_saves_energy_without_collapse() {
        let mut scale = ExperimentScale::quick();
        scale.epochs = 4;
        scale.eval_samples = 30;
        let r = ablation_approx_counter(&scale);
        assert!(
            r.approx_energy.tops_per_watt > r.exact_energy.tops_per_watt,
            "approximate counters must be cheaper: {:?} vs {:?}",
            r.approx_energy.tops_per_watt,
            r.exact_energy.tops_per_watt
        );
        // The counting error is small and unbiased; accuracy stays within
        // a loose band of the exact deployment even at smoke scale.
        assert!(r.approx_accuracy >= r.exact_accuracy - 0.25);
    }

    #[test]
    fn scaqfp_sweep_runs_and_orders_lengths() {
        let mut scale = ExperimentScale::quick();
        scale.epochs = 4;
        scale.eval_samples = 20;
        let sweep = scaqfp_sweep(&scale, &[8, 256]);
        assert!((0.0..=1.0).contains(&sweep.float_accuracy));
        assert_eq!(sweep.points.len(), 2);
        for p in &sweep.points {
            assert!((0.0..=1.0).contains(&p.apc_accuracy));
            assert!((0.0..=1.0).contains(&p.mux_accuracy));
        }
    }

    #[test]
    fn quick_robustness_campaign_runs() {
        let mut scale = ExperimentScale::quick();
        scale.samples_per_class = 16;
        scale.epochs = 2;
        scale.eval_samples = 12;
        let cfg = crate::robustness::SweepConfig::stuck_cell_grid(&[0.0, 0.3], 2, scale.seed)
            .unwrap()
            .with_eval_samples(Some(scale.eval_samples));
        let report = robustness_campaign(&scale, RobustnessWorkload::DigitsMlp, &cfg);
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.total_trials(), 4);
        // The pristine point is deterministic: both trials agree exactly.
        let clean = &report.points[0];
        assert_eq!(clean.min_accuracy, clean.max_accuracy);
        assert!(report
            .points
            .iter()
            .flat_map(|p| &p.trials)
            .all(|t| (0.0..=1.0).contains(&t.accuracy)));
    }

    #[test]
    fn quick_variation_campaign_runs_stochastically() {
        let mut scale = ExperimentScale::quick();
        scale.samples_per_class = 16;
        scale.epochs = 2;
        scale.eval_samples = 10;
        let cfg = crate::robustness::SweepConfig::stuck_cell_grid(&[0.0, 0.2], 2, scale.seed)
            .unwrap()
            .with_eval_samples(Some(scale.eval_samples))
            .with_grayzone_scales(&[1.0, 8.0])
            .unwrap();
        let report = robustness_campaign(&scale, RobustnessWorkload::DigitsMlp, &cfg);
        // 2 scales × 2 rates, variation-major.
        assert_eq!(report.points.len(), 4);
        assert_eq!(report.total_trials(), 8);
        assert_eq!(report.points[0].variation.unwrap().grayzone_scale(), 1.0);
        assert_eq!(report.points[2].variation.unwrap().grayzone_scale(), 8.0);
        assert!(report
            .points
            .iter()
            .flat_map(|p| &p.trials)
            .all(|t| (0.0..=1.0).contains(&t.accuracy)));
    }

    #[test]
    fn bitstream_sweep_shape() {
        let mut scale = ExperimentScale::quick();
        scale.epochs = 2;
        scale.eval_samples = 20;
        let pts = bitstream_sweep(&scale, &[1, 8], &[16], 2.4);
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.accuracy)));
    }
}
