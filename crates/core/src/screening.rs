//! ATPG die screening: minimal probe-vector generation over the
//! structural fault universe.
//!
//! The robustness engine ([`crate::robustness`]) measures how much
//! accuracy a die *loses* under random defects. A production fab line
//! asks the inverse question: **which handful of inputs distinguishes a
//! defective die from a golden one?** This module answers it the way
//! logic-level ATPG tools do — enumerate the fault classes, measure which
//! candidate test vectors detect which faults, and greedily cover:
//!
//! 1. [`fault_universe`] enumerates the *targeted* structural fault
//!    classes of a lowered [`PackedModel`]: for every physical die
//!    (see `PackedTiledMatrix::tile_dims`), each LiM cell stuck at the
//!    **opposite** of its stored weight (the same-polarity stuck-at is
//!    behaviorally benign — the cell already reads that value), plus
//!    both polarities of every dead column.
//! 2. [`generate_probes`] plays each fault class against a candidate
//!    pool (eval-set planes plus [`synthesize_probes`] patterns) using
//!    the clone-free journal path — patch the fault in
//!    (`PackedModel::apply_layer_faults_journaled`), evaluate the whole
//!    pool in the digital limit, revert — building a fault × vector
//!    detection matrix, then runs a greedy set cover that picks the
//!    smallest vector set reaching the coverage target. By default the
//!    evaluation rides the event-driven fault-cone engine
//!    ([`crate::deploy::delta`]): the clean pool is traced into one
//!    shared [`ActivationCache`], and each fault class re-votes only its
//!    dirtied channels, propagating forward only while the perturbation
//!    stays live — bit-identical to the full forward
//!    ([`ScreenEngine::Full`] keeps it as the differential oracle) but
//!    orders of magnitude cheaper per class.
//! 3. The chosen vectors and their golden `(label, scores)` outputs are
//!    sealed into a [`ProbeSet`] — a versioned binary artifact
//!    (magic `SBNNPROB`, same wire discipline as
//!    [`deploy::snapshot`](crate::deploy::snapshot)) that
//!    [`ProbeSet::screen`] replays against any die snapshot in
//!    milliseconds: any output mismatch flags the die as defective.
//!
//! Detection compares **labels and score bit patterns**: the classifier
//! head is a deterministic popcount, so any activation flip that reaches
//! it perturbs the scores even when the argmax survives — a far more
//! sensitive screen than label agreement alone.

use crate::deploy::{ActivationCache, DirtyChannels, PackedModel, SnapshotError};
use aqfp_crossbar::faults::{
    fault_universe_size, FaultKind, InjectedFaults, PatchJournal, StructuralFault,
};
use aqfp_device::Bit;
use aqfp_sc::{random_probe_plane, striped_probe_plane, BitPlane};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The 8-byte magic prefix of every probe-set file.
pub const PROBESET_MAGIC: [u8; 8] = *b"SBNNPROB";

/// The probe-set wire-format version this build writes and reads.
pub const PROBESET_VERSION: u32 = 1;

/// Sanity cap on decoded length fields (see `deploy::snapshot`).
const MAX_LEN: u64 = 1 << 28;

/// Why a screening run could not produce a meaningful report. Every
/// variant names a degenerate input that would otherwise surface as a
/// NaN or vacuous coverage number; [`generate_probes`] refuses instead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScreeningError {
    /// The candidate pool is empty — no vector can detect anything.
    NoCandidates,
    /// The coverage target lies outside `[0, 1]`.
    InvalidCoverageTarget(f64),
    /// The probe-vector budget is zero.
    ZeroVectorBudget,
    /// The (possibly subsampled) fault universe is empty: the model has
    /// no weighted stages, or [`ScreeningConfig::fault_classes`] capped
    /// the targeted set to nothing. Coverage over zero classes is
    /// undefined, not 100%.
    EmptyFaultUniverse,
    /// Every targeted fault class is logically masked: no candidate
    /// vector perturbs any output. Test coverage (covered / detectable)
    /// would be 0/0; the pool needs different vectors, not a report.
    MaskedFaultUniverse,
}

impl std::fmt::Display for ScreeningError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoCandidates => write!(f, "screening needs candidate vectors"),
            Self::InvalidCoverageTarget(t) => {
                write!(f, "coverage target {t} outside [0, 1]")
            }
            Self::ZeroVectorBudget => write!(f, "probe budget must be positive"),
            Self::EmptyFaultUniverse => {
                write!(f, "fault universe is empty: nothing to cover")
            }
            Self::MaskedFaultUniverse => {
                write!(
                    f,
                    "every targeted fault class is masked: no candidate vector detects any"
                )
            }
        }
    }
}

impl std::error::Error for ScreeningError {}

/// Which forward engine evaluates the fault × vector detection matrix.
/// Both are bit-identical by construction (and pinned so by property
/// tests); the delta engine is the production default, the full engine
/// the differential oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ScreenEngine {
    /// Full `classify_planes` forward per fault class.
    Full,
    /// Event-driven fault-cone evaluation over a shared
    /// [`ActivationCache`] (see [`crate::deploy::delta`]).
    #[default]
    Delta,
}

/// One targeted structural fault class of a lowered model: a named
/// defect ([`StructuralFault`], die-local coordinates) on one weighted
/// pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// Pipeline stage index of the afflicted matrix.
    pub layer: usize,
    /// The defect, localized to a die of that stage.
    pub fault: StructuralFault,
}

/// Configuration of a screening run. Builder-style, like
/// [`SweepConfig`](crate::robustness::SweepConfig).
#[derive(Debug, Clone, Copy)]
pub struct ScreeningConfig {
    /// Cap on the number of fault classes targeted (seeded uniform
    /// subsample of the universe); `None` targets every class.
    pub fault_classes: Option<usize>,
    /// Hard cap on the probe-vector count (the fab-line budget).
    pub max_vectors: usize,
    /// Stop once this fraction of targeted classes is covered.
    pub target_coverage: f64,
    /// Seed of the class subsample.
    pub seed: u64,
    /// Worker threads for the fault × vector detection matrix.
    pub workers: usize,
    /// Forward engine for the detection matrix (default: delta).
    pub engine: ScreenEngine,
}

impl Default for ScreeningConfig {
    fn default() -> Self {
        Self {
            fault_classes: None,
            max_vectors: 64,
            target_coverage: 1.0,
            seed: 0x5C12EE,
            workers: 1,
            engine: ScreenEngine::default(),
        }
    }
}

impl ScreeningConfig {
    /// Caps the targeted fault classes.
    pub fn with_fault_classes(mut self, classes: usize) -> Self {
        self.fault_classes = Some(classes);
        self
    }

    /// Sets the probe-vector budget.
    pub fn with_max_vectors(mut self, max: usize) -> Self {
        self.max_vectors = max;
        self
    }

    /// Sets the coverage target in `[0, 1]`.
    pub fn with_target_coverage(mut self, target: f64) -> Self {
        self.target_coverage = target;
        self
    }

    /// Sets the subsample seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Selects the detection-matrix forward engine.
    pub fn with_engine(mut self, engine: ScreenEngine) -> Self {
        self.engine = engine;
        self
    }
}

/// The result of a screening run: coverage accounting, the chosen
/// vectors, the undetected-fault census, and the sealed [`ProbeSet`].
///
/// `PartialEq` compares every field including the sealed probes — it is
/// what the delta-vs-full differential gates (`--verify` in the screen
/// example, the engine-equivalence tests) assert with.
#[derive(Debug, Clone, PartialEq)]
pub struct ScreeningReport {
    /// Size of the **full** enumerable universe (both stuck-at
    /// polarities of every cell, both dead-column polarities), across
    /// all weighted stages.
    pub universe: usize,
    /// Fault classes actually targeted: the behaviorally relevant subset
    /// (opposite-polarity stuck cells + dead columns), after any
    /// [`ScreeningConfig::fault_classes`] subsample.
    pub targeted: usize,
    /// Targeted classes detected by at least one candidate vector — the
    /// ceiling any vector selection can reach with this pool.
    pub detectable: usize,
    /// Targeted classes covered by the chosen vectors.
    pub covered: usize,
    /// `covered / targeted` — the fault coverage of the probe set.
    pub coverage: f64,
    /// Indices into the candidate pool, in greedy selection order.
    pub chosen: Vec<usize>,
    /// Targeted classes the chosen vectors detect.
    pub detected: Vec<FaultSite>,
    /// Census of targeted classes the chosen vectors do **not** detect.
    pub undetected: Vec<FaultSite>,
    /// The sealed probe set (chosen vectors + golden outputs).
    pub probes: ProbeSet,
}

impl ScreeningReport {
    /// `covered / detectable` — the **test coverage** in ATPG terms:
    /// coverage over the classes the candidate pool can distinguish at
    /// all. Targeted classes no vector detects are logically masked in
    /// the digital limit (a stuck cell propagates only when its tile
    /// comparator *and* the majority vote both sit at margin); they are
    /// censused in [`Self::undetected`] rather than silently hidden, but
    /// they bound what any vector selection can reach, so the screening
    /// quality gate reads this ratio.
    pub fn test_coverage(&self) -> f64 {
        if self.detectable == 0 {
            1.0
        } else {
            self.covered as f64 / self.detectable as f64
        }
    }
}

/// Enumerates the targeted structural fault classes of a lowered model:
/// per weighted stage and die, every LiM cell stuck at the opposite of
/// its stored weight, plus both polarities of every dead column.
/// Same-polarity stuck cells are omitted — a cell stuck at the value it
/// already stores is undetectable by construction (the die computes the
/// same function), and keeping them would only dilute the coverage
/// metric with vacuous classes.
pub fn fault_universe(model: &PackedModel) -> Vec<FaultSite> {
    let mut sites = Vec::new();
    for (li, layer) in model.layers().iter().enumerate() {
        let Some(m) = layer_matrix(layer) else {
            continue;
        };
        let dims = m.tile_dims();
        let k = m.row_tiles();
        let row_starts = m.row_tile_starts();
        let col_starts = m.col_group_starts();
        for (die, &(rows, cols)) in dims.iter().enumerate() {
            let (g, r) = (die / k, die % k);
            let (row0, col0) = (row_starts[r], col_starts[g]);
            for row in 0..rows {
                for col in 0..cols {
                    let stored = m.weight_bit(col0 + col, row0 + row);
                    sites.push(FaultSite {
                        layer: li,
                        fault: StructuralFault {
                            die,
                            kind: FaultKind::StuckCell {
                                row,
                                col,
                                value: Bit::from_bool(!stored),
                            },
                        },
                    });
                }
            }
            for col in 0..cols {
                for value in [Bit::Zero, Bit::One] {
                    sites.push(FaultSite {
                        layer: li,
                        fault: StructuralFault {
                            die,
                            kind: FaultKind::DeadColumn { col, value },
                        },
                    });
                }
            }
        }
    }
    sites
}

/// The full two-polarity enumerable universe size of a model (the
/// denominator context [`ScreeningReport::universe`] reports).
pub fn model_universe_size(model: &PackedModel) -> usize {
    model
        .layers()
        .iter()
        .filter_map(layer_matrix)
        .map(|m| fault_universe_size(&m.tile_dims()))
        .sum()
}

/// Synthesizes `n` probe-candidate planes of `len` bits: density-swept
/// random planes interleaved with striped patterns (period swept across
/// powers of two, phases rotated). Natural eval inputs cluster in a
/// narrow activation-statistics band; these synthetic planes push tile
/// partial sums toward their extremes, exciting comparators the eval set
/// never stresses.
pub fn synthesize_probes(len: usize, n: usize, seed: u64) -> Vec<BitPlane> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut probes = Vec::with_capacity(n);
    let densities = [0.05, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 0.95];
    for i in 0..n {
        if i % 3 == 2 {
            // Striped: period cycles through powers of two up to len.
            let max_pow = usize::BITS - len.max(2).leading_zeros();
            let period = 1usize << (1 + (i / 3) as u32 % max_pow.max(1));
            let phase = rng.gen_range(0..period.min(len.max(1)));
            probes.push(striped_probe_plane(len, period, phase));
        } else {
            let p = densities[(i * 7 + i / 3) % densities.len()];
            probes.push(random_probe_plane(len, p, &mut rng));
        }
    }
    probes
}

/// Runs the ATPG loop: builds the fault × vector detection matrix over
/// `candidates` with the clone-free journal path, then greedily covers.
/// Detection is in the **digital limit** (the deterministic engine the
/// fab tester replays), comparing labels and score bit patterns against
/// the golden die. The matrix is evaluated by the engine
/// [`ScreeningConfig::engine`] selects — fault-cone delta by default,
/// full forward as the oracle — with bit-identical results either way.
///
/// Worker fan-out follows the robustness sweeps: each worker owns one
/// model clone and one [`PatchJournal`], patching and reverting in
/// place per fault class; the delta engine additionally shares one
/// immutable [`ActivationCache`] across all workers.
///
/// # Errors
/// Returns a [`ScreeningError`] on degenerate inputs — an empty
/// candidate pool, a coverage target outside `[0, 1]`, a zero vector
/// budget, an empty (possibly subsampled-to-nothing) fault universe, or
/// a universe the pool cannot detect any class of. Every one of these
/// used to surface as a vacuous or undefined coverage ratio.
pub fn generate_probes(
    model: &PackedModel,
    candidates: &[BitPlane],
    cfg: &ScreeningConfig,
) -> Result<ScreeningReport, ScreeningError> {
    if candidates.is_empty() {
        return Err(ScreeningError::NoCandidates);
    }
    if !(0.0..=1.0).contains(&cfg.target_coverage) {
        return Err(ScreeningError::InvalidCoverageTarget(cfg.target_coverage));
    }
    if cfg.max_vectors == 0 {
        return Err(ScreeningError::ZeroVectorBudget);
    }
    let universe = model_universe_size(model);
    let mut sites = fault_universe(model);
    if let Some(cap) = cfg.fault_classes {
        subsample(&mut sites, cap, cfg.seed);
    }
    if sites.is_empty() {
        return Err(ScreeningError::EmptyFaultUniverse);
    }
    let cache = match cfg.engine {
        ScreenEngine::Delta => Some(ActivationCache::new(model, candidates)),
        ScreenEngine::Full => None,
    };
    let golden = match &cache {
        Some(c) => c.golden().to_vec(),
        None => model.classify_planes(candidates),
    };
    let detect = detection_matrix(
        model,
        &sites,
        candidates,
        &golden,
        cache.as_ref(),
        cfg.workers,
    );
    let detectable = detect.iter().filter(|m| m.iter().any(|&w| w != 0)).count();
    if detectable == 0 {
        return Err(ScreeningError::MaskedFaultUniverse);
    }

    // Greedy set cover over the targeted classes, run on the transposed
    // per-candidate site masks: each gain is then a masked popcount over
    // the uncovered set instead of a walk over every class, which keeps
    // the cover negligible next to the detection matrix even at large
    // class counts. Selection order is unchanged (strict improvement,
    // lowest candidate index wins ties), so reports are bit-identical to
    // the per-class formulation.
    let words = candidates.len().div_ceil(64);
    let site_words = sites.len().div_ceil(64);
    let mut cand_sites: Vec<Vec<u64>> = vec![vec![0u64; site_words]; candidates.len()];
    for (s, mask) in detect.iter().enumerate() {
        for (w, &word) in mask.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let c = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                cand_sites[c][s / 64] |= 1 << (s % 64);
            }
        }
    }
    let mut uncovered = vec![u64::MAX; site_words];
    if !sites.len().is_multiple_of(64) {
        uncovered[site_words - 1] = (1u64 << (sites.len() % 64)) - 1;
    }
    let mut covered_count = 0usize;
    let mut chosen: Vec<usize> = Vec::new();
    let mut in_set = vec![false; candidates.len()];
    let target = (cfg.target_coverage * sites.len() as f64).ceil() as usize;
    while chosen.len() < cfg.max_vectors && covered_count < target {
        let mut best = (usize::MAX, 0usize);
        for (c, &taken) in in_set.iter().enumerate() {
            if taken {
                continue;
            }
            let gain: usize = cand_sites[c]
                .iter()
                .zip(&uncovered)
                .map(|(cand, open)| (cand & open).count_ones() as usize)
                .sum();
            if gain > best.1 {
                best = (c, gain);
            }
        }
        if best.1 == 0 {
            break;
        }
        in_set[best.0] = true;
        chosen.push(best.0);
        covered_count += best.1;
        for (open, &cand) in uncovered.iter_mut().zip(&cand_sites[best.0]) {
            *open &= !cand;
        }
    }
    let covered: Vec<bool> = (0..sites.len())
        .map(|s| uncovered[s / 64] >> (s % 64) & 1 == 0)
        .collect();
    debug_assert_eq!(words, detect.first().map_or(words, Vec::len));

    let (detected, undetected): (Vec<FaultSite>, Vec<FaultSite>) = {
        let (yes, no): (Vec<_>, Vec<_>) = sites.iter().zip(&covered).partition(|&(_, &done)| done);
        (
            yes.into_iter().map(|(s, _)| *s).collect(),
            no.into_iter().map(|(s, _)| *s).collect(),
        )
    };
    let coverage = covered_count as f64 / sites.len() as f64;
    let probes = ProbeSet::new(
        model.input_shape(),
        chosen.iter().map(|&c| candidates[c].clone()).collect(),
        chosen.iter().map(|&c| golden[c].clone()).collect(),
    );
    Ok(ScreeningReport {
        universe,
        targeted: sites.len(),
        detectable,
        covered: covered_count,
        coverage,
        chosen,
        detected,
        undetected,
        probes,
    })
}

/// The packed matrix behind a weighted stage.
fn layer_matrix(layer: &crate::deploy::PackedLayer) -> Option<&crate::deploy::PackedTiledMatrix> {
    layer.matrix()
}

/// Seeded partial Fisher–Yates subsample: keeps the first `cap` entries
/// of a uniform shuffle.
fn subsample(sites: &mut Vec<FaultSite>, cap: usize, seed: u64) {
    if cap >= sites.len() {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..cap {
        let j = rng.gen_range(i..sites.len());
        sites.swap(i, j);
    }
    sites.truncate(cap);
}

/// Whether `(label, scores)` differ bit-exactly.
fn outputs_differ(a: &(usize, Vec<f32>), b: &(usize, Vec<f32>)) -> bool {
    a.0 != b.0
        || a.1.len() != b.1.len()
        || a.1
            .iter()
            .zip(&b.1)
            .any(|(x, y)| x.to_bits() != y.to_bits())
}

/// Builds the fault × vector detection matrix: one candidate bitmask per
/// fault site, fanned across `workers` threads (one clone + journal
/// each). With a `cache`, each site is evaluated by the fault-cone delta
/// engine — only samples whose final plane actually changed are diffed
/// against the golden outputs (an unchanged plane cannot detect, and a
/// changed one still might not: the popcount scores can coincide).
/// Without one, each site pays a full `classify_planes` pass.
fn detection_matrix(
    model: &PackedModel,
    sites: &[FaultSite],
    candidates: &[BitPlane],
    golden: &[(usize, Vec<f32>)],
    cache: Option<&ActivationCache>,
    workers: usize,
) -> Vec<Vec<u64>> {
    let words = candidates.len().div_ceil(64);
    let mut detect: Vec<Vec<u64>> = vec![Vec::new(); sites.len()];
    if sites.is_empty() {
        return detect;
    }
    // Dies per stage, for rendering a site's per-die draw vector.
    let layer_dies: Vec<usize> = model
        .layers()
        .iter()
        .map(|l| layer_matrix(l).map_or(0, |m| m.tile_dims().len()))
        .collect();
    let workers = workers.max(1).min(sites.len());
    let chunk = sites.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (ci, slots) in detect.chunks_mut(chunk).enumerate() {
            let layer_dies = &layer_dies;
            scope.spawn(move || {
                let mut m = model.clone();
                let mut journal = PatchJournal::new();
                for (j, slot) in slots.iter_mut().enumerate() {
                    let site = &sites[ci * chunk + j];
                    let draws: Vec<InjectedFaults> = site.fault.to_draws(layer_dies[site.layer]);
                    let mut mask = vec![0u64; words];
                    m.apply_layer_faults_journaled(site.layer, &draws, &mut journal);
                    match cache {
                        Some(cache) => {
                            let dirty = DirtyChannels::from_layer_draws(model, site.layer, &draws);
                            for (i, p) in m.delta_changed(cache, &dirty) {
                                if outputs_differ(&p, &golden[i]) {
                                    mask[i / 64] |= 1 << (i % 64);
                                }
                            }
                        }
                        None => {
                            for (i, (p, g)) in
                                m.classify_planes(candidates).iter().zip(golden).enumerate()
                            {
                                if outputs_differ(p, g) {
                                    mask[i / 64] |= 1 << (i % 64);
                                }
                            }
                        }
                    }
                    m.revert_faults(&mut journal);
                    *slot = mask;
                }
            });
        }
    });
    detect
}

/// The outcome of replaying a [`ProbeSet`] against a die.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScreenOutcome {
    /// Per-probe mismatch flags (`true` = this probe's output diverged
    /// from the golden die).
    pub mismatches: Vec<bool>,
}

impl ScreenOutcome {
    /// Whether the die matched the golden outputs on every probe.
    pub fn clean(&self) -> bool {
        !self.mismatches.iter().any(|&m| m)
    }

    /// How many probes flagged a divergence.
    pub fn detections(&self) -> usize {
        self.mismatches.iter().filter(|&&m| m).count()
    }
}

/// A sealed, replayable screening artifact: the chosen probe planes and
/// the golden die's `(label, scores)` for each. Serialized with the same
/// hand-rolled little-endian discipline as the model snapshots (magic
/// [`PROBESET_MAGIC`]), so a fab tester ships one file per model and
/// screens dies without the training stack.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSet {
    input_shape: [usize; 3],
    planes: Vec<BitPlane>,
    golden: Vec<(usize, Vec<f32>)>,
}

impl ProbeSet {
    /// Seals a probe set.
    ///
    /// # Panics
    /// Panics if plane and golden counts differ, a plane's length does
    /// not match the input shape, or score vectors have inconsistent
    /// lengths.
    pub fn new(
        input_shape: [usize; 3],
        planes: Vec<BitPlane>,
        golden: Vec<(usize, Vec<f32>)>,
    ) -> Self {
        assert_eq!(planes.len(), golden.len(), "plane/golden count mismatch");
        let len: usize = input_shape.iter().product();
        for p in &planes {
            assert_eq!(p.len(), len, "probe plane length mismatch");
        }
        if let Some(classes) = golden.first().map(|(_, s)| s.len()) {
            for (label, scores) in &golden {
                assert_eq!(scores.len(), classes, "score length mismatch");
                assert!(*label < classes, "golden label out of range");
            }
        }
        Self {
            input_shape,
            planes,
            golden,
        }
    }

    /// Probe count.
    pub fn len(&self) -> usize {
        self.planes.len()
    }

    /// Whether the set holds no probes.
    pub fn is_empty(&self) -> bool {
        self.planes.is_empty()
    }

    /// The model input shape the probes were generated for.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// The probe planes.
    pub fn planes(&self) -> &[BitPlane] {
        &self.planes
    }

    /// The golden `(label, scores)` per probe.
    pub fn golden(&self) -> &[(usize, Vec<f32>)] {
        &self.golden
    }

    /// Replays the probes against a die (digital limit) and compares
    /// labels + score bits against the golden outputs. A faulty die
    /// shows up as one or more mismatches; a golden-equivalent die comes
    /// back [`ScreenOutcome::clean`].
    ///
    /// # Panics
    /// Panics if the model's input shape differs from the probe set's.
    pub fn screen(&self, model: &PackedModel) -> ScreenOutcome {
        assert_eq!(
            model.input_shape(),
            self.input_shape,
            "probe set / model shape mismatch"
        );
        let preds = model.classify_planes(&self.planes);
        ScreenOutcome {
            mismatches: preds
                .iter()
                .zip(&self.golden)
                .map(|(p, g)| outputs_differ(p, g))
                .collect(),
        }
    }

    /// Writes the probe set to a stream (see the module docs for the
    /// wire format).
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on write failure.
    pub fn write<W: Write>(&self, w: &mut W) -> Result<(), SnapshotError> {
        w.write_all(&PROBESET_MAGIC).map_err(SnapshotError::Io)?;
        put_u32(w, PROBESET_VERSION)?;
        for d in self.input_shape {
            put_u64(w, d as u64)?;
        }
        put_u64(w, self.planes.len() as u64)?;
        let classes = self.golden.first().map_or(0, |(_, s)| s.len());
        put_u64(w, classes as u64)?;
        for plane in &self.planes {
            for &word in plane.words() {
                put_u64(w, word)?;
            }
        }
        for (label, scores) in &self.golden {
            put_u64(w, *label as u64)?;
            for &s in scores {
                put_u32(w, s.to_bits())?;
            }
        }
        Ok(())
    }

    /// Reads and validates a probe set from a stream.
    ///
    /// # Errors
    /// [`SnapshotError`] on I/O failure, bad magic/version, or any
    /// structural-invariant violation (lengths, zero-tail, label range).
    pub fn read<R: Read>(r: &mut R) -> Result<Self, SnapshotError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(SnapshotError::Io)?;
        if magic != PROBESET_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = get_u32(r)?;
        if version != PROBESET_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let mut input_shape = [0usize; 3];
        for d in &mut input_shape {
            *d = get_len(r, "input shape dimension")?;
        }
        let len: usize = input_shape.iter().product();
        if len == 0 {
            return Err(SnapshotError::Corrupt("empty input shape"));
        }
        let n = get_len(r, "probe count")?;
        let classes = get_len(r, "class count")?;
        let words = len.div_ceil(64);
        let mut planes = Vec::with_capacity(n);
        for _ in 0..n {
            let mut buf = vec![0u64; words];
            for w in &mut buf {
                *w = get_u64(r)?;
            }
            let rem = len % 64;
            if rem > 0 && buf[words - 1] >> rem != 0 {
                return Err(SnapshotError::Corrupt("probe plane tail bits set"));
            }
            planes.push(BitPlane::from_words(buf, len));
        }
        let mut golden = Vec::with_capacity(n);
        for _ in 0..n {
            let label = get_len(r, "golden label")?;
            if label >= classes.max(1) {
                return Err(SnapshotError::Corrupt("golden label out of range"));
            }
            let mut scores = Vec::with_capacity(classes);
            for _ in 0..classes {
                scores.push(f32::from_bits(get_u32(r)?));
            }
            golden.push((label, scores));
        }
        Ok(Self {
            input_shape,
            planes,
            golden,
        })
    }

    /// Writes the probe set to a file (buffered).
    ///
    /// # Errors
    /// See [`Self::write`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let mut w = BufWriter::new(File::create(path).map_err(SnapshotError::Io)?);
        self.write(&mut w)?;
        w.flush().map_err(SnapshotError::Io)
    }

    /// Reads a probe set from a file (buffered).
    ///
    /// # Errors
    /// See [`Self::read`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::read(&mut BufReader::new(
            File::open(path).map_err(SnapshotError::Io)?,
        ))
    }
}

fn put_u32<W: Write>(w: &mut W, v: u32) -> Result<(), SnapshotError> {
    w.write_all(&v.to_le_bytes()).map_err(SnapshotError::Io)
}

fn put_u64<W: Write>(w: &mut W, v: u64) -> Result<(), SnapshotError> {
    w.write_all(&v.to_le_bytes()).map_err(SnapshotError::Io)
}

fn get_u32<R: Read>(r: &mut R) -> Result<u32, SnapshotError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(SnapshotError::Io)?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64<R: Read>(r: &mut R) -> Result<u64, SnapshotError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(SnapshotError::Io)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a length field with the sanity cap applied.
fn get_len<R: Read>(r: &mut R, what: &'static str) -> Result<usize, SnapshotError> {
    let v = get_u64(r)?;
    if v > MAX_LEN {
        return Err(SnapshotError::Corrupt(what));
    }
    Ok(v as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HardwareConfig;
    use crate::deploy::deploy;
    use crate::spec::NetSpec;
    use crate::trainer::{TrainConfig, Trainer};
    use bnn_datasets::{digits::generate_digits, SynthConfig};

    fn tiny_model() -> (PackedModel, Vec<BitPlane>) {
        let data = generate_digits(&SynthConfig {
            samples_per_class: 4,
            ..Default::default()
        });
        let hw = HardwareConfig {
            crossbar_rows: 8,
            crossbar_cols: 8,
            ..Default::default()
        };
        let spec = NetSpec::mlp(&[1, 16, 16], &[12], 10);
        let mut net = spec.build_software(&hw, 5);
        Trainer::new(TrainConfig {
            epochs: 1,
            ..Default::default()
        })
        .train(&mut net, &data);
        let deployed = deploy(&spec, &net, &hw).unwrap();
        let packed = deployed.to_packed();
        let planes: Vec<BitPlane> = (0..16)
            .map(|n| crate::deploy::BitMap::from_tensor_sample(&data.images, n).to_plane())
            .collect();
        (packed, planes)
    }

    #[test]
    fn universe_targets_malignant_polarities_only() {
        let (packed, _) = tiny_model();
        let sites = fault_universe(&packed);
        let full = model_universe_size(&packed);
        // Stuck cells contribute half their two-polarity count; dead
        // columns contribute all of theirs — targeted < full, and every
        // stuck-at value opposes the stored weight.
        assert!(sites.len() < full);
        assert!(!sites.is_empty());
        for site in &sites {
            if let FaultKind::StuckCell { row, col, value } = site.fault.kind {
                let m = super::layer_matrix(&packed.layers()[site.layer]).unwrap();
                let k = m.row_tiles();
                let (g, r) = (site.fault.die / k, site.fault.die % k);
                let global_row = m.row_tile_starts()[r] + row;
                let global_col = m.col_group_starts()[g] + col;
                assert_ne!(m.weight_bit(global_col, global_row), value.as_bool());
            }
        }
    }

    #[test]
    fn greedy_cover_detects_what_it_claims() {
        let (packed, planes) = tiny_model();
        let mut candidates = planes;
        candidates.extend(synthesize_probes(
            packed.input_shape().iter().product(),
            24,
            9,
        ));
        let cfg = ScreeningConfig::default()
            .with_fault_classes(40)
            .with_max_vectors(16)
            .with_workers(2);
        let report = generate_probes(&packed, &candidates, &cfg).unwrap();
        assert_eq!(report.targeted, 40);
        assert!(report.covered <= report.detectable);
        assert_eq!(report.targeted, report.covered + report.undetected.len());
        assert!(report.probes.len() <= 16);
        assert_eq!(report.probes.len(), report.chosen.len());
        // The golden die itself must screen clean.
        assert!(report.probes.screen(&packed).clean());
        // Every covered fault class must be caught by the probe set when
        // actually injected.
        assert_eq!(report.detected.len(), report.covered);
        let mut m = packed.clone();
        let mut journal = PatchJournal::new();
        let mut checked = 0;
        for site in report.detected.iter().take(10) {
            let dims = super::layer_matrix(&packed.layers()[site.layer])
                .unwrap()
                .tile_dims();
            m.apply_layer_faults_journaled(
                site.layer,
                &site.fault.to_draws(dims.len()),
                &mut journal,
            );
            let outcome = report.probes.screen(&m);
            m.revert_faults(&mut journal);
            assert!(!outcome.clean(), "covered fault {site:?} must be detected");
            checked += 1;
        }
        assert!(checked > 0, "some classes must be covered");
    }

    #[test]
    fn probe_set_roundtrips_bit_exactly() {
        let (packed, planes) = tiny_model();
        let cfg = ScreeningConfig::default()
            .with_fault_classes(12)
            .with_max_vectors(8);
        let report = generate_probes(&packed, &planes, &cfg).unwrap();
        let mut buf = Vec::new();
        report.probes.write(&mut buf).unwrap();
        let back = ProbeSet::read(&mut buf.as_slice()).unwrap();
        assert_eq!(back, report.probes);
        // Tampered magic is rejected.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            ProbeSet::read(&mut bad.as_slice()),
            Err(SnapshotError::BadMagic)
        ));
        // A truncated stream errors instead of panicking.
        let cut = &buf[..buf.len() - 3];
        assert!(ProbeSet::read(&mut &cut[..]).is_err());
    }

    #[test]
    fn delta_and_full_engines_build_identical_reports() {
        let (packed, planes) = tiny_model();
        let mut candidates = planes;
        candidates.extend(synthesize_probes(
            packed.input_shape().iter().product(),
            16,
            21,
        ));
        let cfg = ScreeningConfig::default()
            .with_fault_classes(60)
            .with_max_vectors(16)
            .with_workers(2);
        let full = generate_probes(&packed, &candidates, &cfg.with_engine(ScreenEngine::Full))
            .expect("full engine report");
        let delta = generate_probes(&packed, &candidates, &cfg.with_engine(ScreenEngine::Delta))
            .expect("delta engine report");
        assert_eq!(full.targeted, delta.targeted);
        assert_eq!(full.detectable, delta.detectable);
        assert_eq!(full.covered, delta.covered);
        assert_eq!(full.chosen, delta.chosen);
        assert_eq!(full.detected, delta.detected);
        assert_eq!(full.undetected, delta.undetected);
        assert_eq!(full.probes, delta.probes);
    }

    #[test]
    fn degenerate_screening_inputs_return_typed_errors() {
        let (packed, planes) = tiny_model();
        let cfg = ScreeningConfig::default();
        assert_eq!(
            generate_probes(&packed, &[], &cfg).unwrap_err(),
            ScreeningError::NoCandidates
        );
        assert_eq!(
            generate_probes(&packed, &planes, &cfg.with_target_coverage(1.5)).unwrap_err(),
            ScreeningError::InvalidCoverageTarget(1.5)
        );
        assert_eq!(
            generate_probes(&packed, &planes, &cfg.with_max_vectors(0)).unwrap_err(),
            ScreeningError::ZeroVectorBudget
        );
        // A subsample capped to zero classes empties the universe.
        assert_eq!(
            generate_probes(&packed, &planes, &cfg.with_fault_classes(0)).unwrap_err(),
            ScreeningError::EmptyFaultUniverse
        );
        // Every variant renders a human-readable message.
        for err in [
            ScreeningError::NoCandidates,
            ScreeningError::InvalidCoverageTarget(2.0),
            ScreeningError::ZeroVectorBudget,
            ScreeningError::EmptyFaultUniverse,
            ScreeningError::MaskedFaultUniverse,
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn fully_masked_universe_is_a_typed_error() {
        let (packed, planes) = tiny_model();
        // Find a seeded 1-class subsample landing on a class the pool
        // cannot detect; such classes exist on this operating point (the
        // example's census reports them on every run).
        let masked = (0..512).find_map(|seed| {
            let cfg = ScreeningConfig::default()
                .with_fault_classes(1)
                .with_seed(seed);
            generate_probes(&packed, &planes, &cfg).err()
        });
        assert_eq!(masked, Some(ScreeningError::MaskedFaultUniverse));
    }

    #[test]
    fn synthesized_probes_cover_densities_and_stripes() {
        let probes = synthesize_probes(100, 12, 3);
        assert_eq!(probes.len(), 12);
        for p in &probes {
            assert_eq!(p.len(), 100);
        }
        // Densities actually vary.
        let counts: Vec<usize> = probes.iter().map(BitPlane::count_ones).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min > 20, "probe densities too uniform: {counts:?}");
    }
}
