//! System-level energy, power and throughput estimation — the "Ours" rows
//! of Tables 2 and 3.
//!
//! Accounting model (all per inference, fully pipelined at the clock rate):
//!
//! * each crossbar burns its Table 1 per-cycle energy for every cycle it is
//!   active: `output positions × bit-stream length L` cycles per layer;
//! * each output channel's SC accumulation module (gate-level APC +
//!   accumulator + comparator) burns its JJ energy over the same activity;
//! * the digital classifier head is charged as an APC popcount tree over
//!   its fan-in per class;
//! * throughput is set by the busiest layer (the pipeline bottleneck);
//! * binary OPs follow the usual 2·MAC convention.

use crate::config::HardwareConfig;
use crate::spec::{CellSpec, NetSpec};
use aqfp_crossbar::cost::CrossbarCost;
use aqfp_crossbar::tile::TilingPlan;
use aqfp_device::consts::{COOLING_OVERHEAD_4K, ENERGY_PER_JJ_AJ};
use aqfp_device::{CellLibrary, ClockScheme};
use aqfp_sc::AccumulationModule;
use serde::{Deserialize, Serialize};

/// Energy/performance estimate of one deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Energy per inference in aJ.
    pub energy_per_inference_aj: f64,
    /// Average power in mW.
    pub power_mw: f64,
    /// Binary operations per inference.
    pub ops_per_inference: u64,
    /// Energy efficiency, TOPS/W, no cooling.
    pub tops_per_watt: f64,
    /// Energy efficiency, TOPS/W, with 4.2 K cooling (÷400).
    pub tops_per_watt_cooled: f64,
    /// Throughput in images per millisecond.
    pub images_per_ms: f64,
    /// Bottleneck-layer cycles per inference.
    pub bottleneck_cycles: u64,
}

/// Per-layer slice of the energy estimate — where each attojoule goes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerEnergy {
    /// Human-readable layer label (kind + geometry).
    pub label: String,
    /// Energy of the crossbar synapse arrays, in aJ per inference.
    pub crossbar_aj: f64,
    /// Energy of the SC accumulation modules (APC + accumulator +
    /// comparator), in aJ per inference.
    pub accumulation_aj: f64,
    /// Other digital energy (residual skip adders, classifier popcount),
    /// in aJ per inference.
    pub other_aj: f64,
    /// Active cycles this layer occupies.
    pub cycles: u64,
    /// Binary operations this layer contributes.
    pub ops: u64,
}

impl LayerEnergy {
    /// Total energy of this layer in aJ.
    pub fn total_aj(&self) -> f64 {
        self.crossbar_aj + self.accumulation_aj + self.other_aj
    }
}

/// Estimates the energy report of a network spec under a hardware config.
///
/// The estimate is structural (it does not need a trained model): per-layer
/// activity follows from the spec's geometry alone.
pub fn estimate(spec: &NetSpec, hw: &HardwareConfig) -> EnergyReport {
    estimate_with_breakdown(spec, hw).0
}

/// [`estimate`] plus the per-layer energy decomposition (crossbars vs SC
/// accumulation vs other digital logic) — the data behind "where does the
/// energy go" questions the paper answers only in aggregate.
pub fn estimate_with_breakdown(
    spec: &NetSpec,
    hw: &HardwareConfig,
) -> (EnergyReport, Vec<LayerEnergy>) {
    hw.validate();
    let lib = CellLibrary::hstp();
    let clock = ClockScheme::four_phase_5ghz();
    let l = hw.bitstream_len as u64;

    let mut layers: Vec<LayerEnergy> = Vec::new();
    let mut bottleneck = 0u64;

    let mut cur = spec.input_shape;
    for cell in &spec.cells {
        match *cell {
            CellSpec::BinarizeInput => {}
            CellSpec::Conv {
                in_c,
                out_c,
                k,
                stride,
                pad,
                pool,
            } => {
                let oh = (cur[1] + 2 * pad - k) / stride + 1;
                let ow = (cur[2] + 2 * pad - k) / stride + 1;
                let positions = (oh * ow) as u64;
                let fan_in = in_c * k * k;
                let cycles = positions * l;
                let (xbar, module) = layer_energy_parts(fan_in, out_c, cycles, hw, &lib, &clock);
                layers.push(LayerEnergy {
                    label: format!("conv {in_c}->{out_c} {k}x{k} @{oh}x{ow}"),
                    crossbar_aj: xbar,
                    accumulation_aj: module,
                    other_aj: 0.0,
                    cycles,
                    ops: 2 * (fan_in * out_c) as u64 * positions,
                });
                bottleneck = bottleneck.max(cycles);
                let div = if pool { 2 } else { 1 };
                cur = [out_c, oh / div, ow / div];
            }
            CellSpec::Residual {
                in_c,
                out_c,
                stride,
            } => {
                // Two 3×3 binary convs (the second at stride 1) plus a 1×1
                // projection when the shape changes; the skip adder is a
                // per-pixel digital add, charged as one full-adder chain
                // per output value (22 JJ per bit, 8 bits).
                let oh = (cur[1] + 2 - 3) / stride + 1;
                let ow = (cur[2] + 2 - 3) / stride + 1;
                let positions = (oh * ow) as u64;
                let cycles = positions * l;
                let fan1 = in_c * 9;
                let fan2 = out_c * 9;
                let (x1, m1) = layer_energy_parts(fan1, out_c, cycles, hw, &lib, &clock);
                let (x2, m2) = layer_energy_parts(fan2, out_c, cycles, hw, &lib, &clock);
                let mut crossbar_aj = x1 + x2;
                let mut accumulation_aj = m1 + m2;
                let mut ops = 2 * ((fan1 + fan2) * out_c) as u64 * positions;
                if in_c != out_c || stride != 1 {
                    let (xp, mp) = layer_energy_parts(in_c, out_c, cycles, hw, &lib, &clock);
                    crossbar_aj += xp;
                    accumulation_aj += mp;
                    ops += 2 * (in_c * out_c) as u64 * positions;
                }
                let adder_jj_per_value = 22.0 * 8.0;
                let other_aj =
                    positions as f64 * out_c as f64 * adder_jj_per_value * ENERGY_PER_JJ_AJ;
                layers.push(LayerEnergy {
                    label: format!("residual {in_c}->{out_c} s{stride} @{oh}x{ow}"),
                    crossbar_aj,
                    accumulation_aj,
                    other_aj,
                    cycles: 2 * cycles,
                    ops,
                });
                bottleneck = bottleneck.max(2 * cycles);
                cur = [out_c, oh, ow];
            }
            CellSpec::Flatten => {
                cur = [cur[0] * cur[1] * cur[2], 1, 1];
            }
            CellSpec::Dense { in_f, out_f } => {
                let cycles = l;
                let (xbar, module) = layer_energy_parts(in_f, out_f, cycles, hw, &lib, &clock);
                layers.push(LayerEnergy {
                    label: format!("dense {in_f}->{out_f}"),
                    crossbar_aj: xbar,
                    accumulation_aj: module,
                    other_aj: 0.0,
                    cycles,
                    ops: 2 * (in_f * out_f) as u64,
                });
                bottleneck = bottleneck.max(cycles);
                cur = [out_f, 1, 1];
            }
            CellSpec::Classifier { in_f, classes } => {
                // Digital popcount per class; activity is one pass.
                let apc = aqfp_sc::Apc::new(in_f).hardware_cost(&lib, &clock);
                layers.push(LayerEnergy {
                    label: format!("classifier {in_f}->{classes}"),
                    crossbar_aj: 0.0,
                    accumulation_aj: 0.0,
                    other_aj: classes as f64 * apc.energy_per_cycle_aj,
                    cycles: apc.depth as u64,
                    ops: 2 * (in_f * classes) as u64,
                });
                bottleneck = bottleneck.max(apc.depth as u64);
                cur = [classes, 1, 1];
            }
        }
    }

    let energy_aj: f64 = layers.iter().map(LayerEnergy::total_aj).sum();
    let ops: u64 = layers.iter().map(|le| le.ops).sum();
    let time_per_inference_s = bottleneck as f64 / (hw.clock_ghz * 1e9);
    let energy_j = energy_aj * 1e-18;
    let power_mw = energy_j / time_per_inference_s * 1e3;
    let tops = ops as f64 / energy_j / 1e12;
    let report = EnergyReport {
        energy_per_inference_aj: energy_aj,
        power_mw,
        ops_per_inference: ops,
        tops_per_watt: tops,
        tops_per_watt_cooled: tops / COOLING_OVERHEAD_4K,
        images_per_ms: 1e-3 / time_per_inference_s,
        bottleneck_cycles: bottleneck,
    };
    (report, layers)
}

/// `(crossbar, accumulation)` energy of one tiled matrix layer over
/// `cycles` active cycles, in aJ.
fn layer_energy_parts(
    fan_in: usize,
    out: usize,
    cycles: u64,
    hw: &HardwareConfig,
    lib: &CellLibrary,
    clock: &ClockScheme,
) -> (f64, f64) {
    let plan = TilingPlan::new(fan_in, out, hw.crossbar_rows, hw.crossbar_cols);
    let crossbar_e: f64 = plan
        .tiles
        .iter()
        .map(|t| {
            CrossbarCost {
                rows: t.rows,
                cols: t.cols,
            }
            .energy_per_cycle_aj()
        })
        .sum();
    // One SC accumulation module per output channel.
    let module =
        AccumulationModule::new(plan.row_tiles(), hw.bitstream_len).with_counter(hw.counter);
    let module_e = module.hardware_jj(lib, clock) as f64 * ENERGY_PER_JJ_AJ * out as f64;
    (crossbar_e * cycles as f64, module_e * cycles as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NetSpec;

    fn vgg() -> NetSpec {
        NetSpec::vgg_small([3, 16, 16], 8, 10)
    }

    #[test]
    fn breakdown_sums_to_the_report_total() {
        let hw = HardwareConfig::default();
        let (report, layers) = estimate_with_breakdown(&vgg(), &hw);
        assert!(!layers.is_empty());
        let total: f64 = layers.iter().map(LayerEnergy::total_aj).sum();
        assert!(
            (total - report.energy_per_inference_aj).abs() < 1e-6 * total,
            "{total} vs {}",
            report.energy_per_inference_aj
        );
        let ops: u64 = layers.iter().map(|le| le.ops).sum();
        assert_eq!(ops, report.ops_per_inference);
        // Every conv/dense layer has both crossbar and accumulation energy.
        for le in layers.iter().filter(|le| le.label.starts_with("conv")) {
            assert!(le.crossbar_aj > 0.0 && le.accumulation_aj > 0.0, "{le:?}");
        }
    }

    #[test]
    fn breakdown_bottleneck_is_the_max_layer_cycles() {
        let hw = HardwareConfig::default();
        let (report, layers) = estimate_with_breakdown(&vgg(), &hw);
        let max_cycles = layers.iter().map(|le| le.cycles).max().unwrap();
        assert_eq!(report.bottleneck_cycles, max_cycles);
    }

    #[test]
    fn report_is_positive_and_finite() {
        let hw = HardwareConfig::default();
        let r = estimate(&vgg(), &hw);
        assert!(r.energy_per_inference_aj > 0.0);
        assert!(r.power_mw > 0.0 && r.power_mw.is_finite());
        assert!(r.tops_per_watt > 0.0);
        assert!(r.images_per_ms > 0.0);
        assert!(r.ops_per_inference > 0);
    }

    #[test]
    fn efficiency_lands_in_papers_band() {
        // Table 2's "Ours" rows span 1.9e5 – 6.8e6 TOPS/W across configs.
        let hw = HardwareConfig::default();
        let r = estimate(&vgg(), &hw);
        assert!(
            r.tops_per_watt > 1e4 && r.tops_per_watt < 1e8,
            "efficiency {} TOPS/W outside plausible band",
            r.tops_per_watt
        );
        assert!((r.tops_per_watt / r.tops_per_watt_cooled - 400.0).abs() < 1e-9);
    }

    #[test]
    fn shorter_bitstreams_are_faster_and_more_efficient() {
        let hw16 = HardwareConfig::default();
        let hw4 = HardwareConfig {
            bitstream_len: 4,
            ..Default::default()
        };
        let r16 = estimate(&vgg(), &hw16);
        let r4 = estimate(&vgg(), &hw4);
        assert!(r4.images_per_ms > r16.images_per_ms);
        assert!(r4.energy_per_inference_aj < r16.energy_per_inference_aj);
    }

    #[test]
    fn bigger_crossbars_raise_efficiency() {
        // The coarse-grained-computation preference of Section 3: larger
        // arrays amortize peripherals (until accuracy pays the price —
        // which is the co-optimization's business, not this model's).
        let small = HardwareConfig {
            crossbar_rows: 8,
            crossbar_cols: 8,
            ..Default::default()
        };
        let big = HardwareConfig {
            crossbar_rows: 72,
            crossbar_cols: 72,
            ..Default::default()
        };
        let rs = estimate(&vgg(), &small);
        let rb = estimate(&vgg(), &big);
        assert!(
            rb.tops_per_watt > rs.tops_per_watt,
            "72×72 {} vs 8×8 {}",
            rb.tops_per_watt,
            rs.tops_per_watt
        );
    }

    #[test]
    fn power_is_microwatt_scale() {
        // Paper Table 2 prints ~6.2e-3 mW for the VGG-Small configs.
        let hw = HardwareConfig::default();
        let r = estimate(&vgg(), &hw);
        assert!(
            r.power_mw < 1.0,
            "AQFP power should be far below a milliwatt-scale budget, got {} mW",
            r.power_mw
        );
    }
}
