//! SGD with momentum and the cosine-annealing-with-warmup schedule.
//!
//! Section 6.1: "The learning rate is initialized as 0.1 and decays with a
//! cosine annealing schedule. SGD is used as the optimizer … The number of
//! warmup epochs is 5."

use crate::model::Sequential;
use crate::tensor::Tensor;

/// SGD with momentum and (optional) weight decay.
///
/// Momentum buffers are associated with parameters by visitation order,
/// which [`Sequential::visit_params`] keeps stable.
pub struct Sgd {
    /// Current learning rate (set each step from the schedule).
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    /// L2 weight decay applied to parameters with `decay = true`.
    pub weight_decay: f32,
    buffers: Vec<Tensor>,
}

impl Sgd {
    /// Creates the optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            buffers: Vec::new(),
        }
    }

    /// Applies one update step to all parameters of `model` and clears the
    /// gradients.
    pub fn step(&mut self, model: &mut Sequential) {
        let lr = self.lr;
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let buffers = &mut self.buffers;
        let mut idx = 0usize;
        model.visit_params(&mut |p| {
            if buffers.len() <= idx {
                buffers.push(Tensor::zeros(p.value.shape()));
            }
            let buf = &mut buffers[idx];
            assert_eq!(
                buf.shape(),
                p.value.shape(),
                "optimizer state shape drifted for {}",
                p.name
            );
            let decay = if p.decay { weight_decay } else { 0.0 };
            for ((v, g), m) in p
                .value
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(buf.data_mut())
            {
                let grad = g + decay * *v;
                *m = momentum * *m + grad;
                *v -= lr * *m;
            }
            p.grad.fill_zero();
            idx += 1;
        });
    }

    /// Clears all gradients without stepping.
    pub fn zero_grad(&mut self, model: &mut Sequential) {
        model.visit_params(&mut |p| p.grad.fill_zero());
    }
}

/// Cosine-annealing learning-rate schedule with linear warmup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineSchedule {
    /// Peak learning rate after warmup.
    pub base_lr: f32,
    /// Linear warmup steps.
    pub warmup_steps: usize,
    /// Total steps (cosine decays to ~0 at this point).
    pub total_steps: usize,
}

impl CosineSchedule {
    /// Learning rate at `step`.
    ///
    /// # Panics
    /// Panics if `total_steps == 0` or `warmup_steps >= total_steps`.
    pub fn lr_at(&self, step: usize) -> f32 {
        assert!(self.total_steps > 0, "schedule needs at least one step");
        assert!(
            self.warmup_steps < self.total_steps,
            "warmup must be shorter than training"
        );
        if step < self.warmup_steps {
            return self.base_lr * (step + 1) as f32 / self.warmup_steps as f32;
        }
        let t = (step - self.warmup_steps) as f32 / (self.total_steps - self.warmup_steps) as f32;
        let t = t.min(1.0);
        0.5 * self.base_lr * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Mode};
    use crate::{NnRng, SeedableRng};

    #[test]
    fn cosine_schedule_shape() {
        let s = CosineSchedule {
            base_lr: 0.1,
            warmup_steps: 10,
            total_steps: 110,
        };
        // Warmup climbs linearly.
        assert!(s.lr_at(0) < s.lr_at(5));
        assert!((s.lr_at(9) - 0.1).abs() < 1e-6);
        // Cosine decays monotonically after warmup.
        assert!(s.lr_at(20) > s.lr_at(60));
        assert!(s.lr_at(60) > s.lr_at(105));
        // Ends near zero and stays there.
        assert!(s.lr_at(110) < 1e-6);
        assert!(s.lr_at(1000) < 1e-6);
    }

    #[test]
    fn sgd_reduces_quadratic_loss() {
        // One linear layer, L = ½‖y‖²: plain gradient descent must converge.
        let mut r = NnRng::seed_from_u64(3);
        let mut model = Sequential::new();
        model.push(Linear::new(4, 4, false, &mut r));
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let x = Tensor::from_vec(&[2, 4], vec![1., -1., 0.5, 2., -0.5, 1., 1., -2.]);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..100 {
            let y = model.forward(&x, Mode::Train, &mut r);
            last = 0.5 * y.data().iter().map(|v| v * v).sum::<f32>();
            first.get_or_insert(last);
            let g = y.clone();
            model.backward(&g);
            opt.step(&mut model);
        }
        assert!(last < 0.01 * first.unwrap(), "loss {last} from {:?}", first);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut r = NnRng::seed_from_u64(4);
        let mut model = Sequential::new();
        model.push(Linear::new(2, 2, false, &mut r));
        let norm_before: f32 = {
            let mut s = 0.0;
            model.visit_params(&mut |p| s += p.value.data().iter().map(|v| v * v).sum::<f32>());
            s
        };
        let mut opt = Sgd::new(0.1, 0.0, 0.1);
        // No data gradient: only decay acts.
        for _ in 0..20 {
            opt.step(&mut model);
        }
        let norm_after: f32 = {
            let mut s = 0.0;
            // Bias has decay=false and starts at zero, so this is weights only.
            model.visit_params(&mut |p| s += p.value.data().iter().map(|v| v * v).sum::<f32>());
            s
        };
        assert!(norm_after < norm_before * 0.9);
    }

    #[test]
    fn momentum_accelerates_on_constant_gradient() {
        // With constant unit gradient, momentum accumulates: displacement
        // after k steps exceeds plain SGD's k·lr.
        let mut r = NnRng::seed_from_u64(5);
        let make = |r: &mut NnRng| {
            let mut m = Sequential::new();
            let mut lin = Linear::new(1, 1, false, r);
            lin.weight_mut().data_mut()[0] = 0.0;
            m.push(lin);
            m
        };
        let run = |momentum: f32, r: &mut NnRng| -> f32 {
            let mut model = make(r);
            let mut opt = Sgd::new(0.01, momentum, 0.0);
            for _ in 0..10 {
                model.visit_params(&mut |p| {
                    if p.name == "weight" {
                        p.grad.data_mut()[0] = 1.0;
                    }
                });
                opt.step(&mut model);
            }
            let mut w = 0.0;
            model.visit_params(&mut |p| {
                if p.name == "weight" {
                    w = p.value.data()[0];
                }
            });
            w
        };
        let plain = run(0.0, &mut r);
        let heavy = run(0.9, &mut r);
        assert!(
            heavy < plain,
            "momentum should have moved further: {heavy} vs {plain}"
        );
    }
}
