//! The weight rectified clamp method (paper Eq. 17, following ReCU).
//!
//! Real-valued latent weights of a BNN collect outliers in the tails of a
//! zero-mean Laplace-like distribution; outliers almost never change sign
//! under gradient descent, deadening part of the network. ReCU clamps the
//! weights to their `[Q(1−τ), Q(τ)]` quantile range each step, pulling
//! outliers back toward the distribution peak. τ anneals from 0.85 to 0.99
//! over training (Section 6.1).

/// The τ annealing schedule: linear from `start` (0.85) to `end` (0.99)
/// over `total_steps`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TauSchedule {
    /// Initial τ.
    pub start: f64,
    /// Final τ.
    pub end: f64,
    /// Steps over which τ anneals.
    pub total_steps: usize,
}

impl TauSchedule {
    /// The paper's schedule: 0.85 → 0.99.
    pub fn paper_default(total_steps: usize) -> Self {
        Self {
            start: 0.85,
            end: 0.99,
            total_steps,
        }
    }

    /// τ at `step` (clamped to the end value afterwards).
    pub fn tau_at(&self, step: usize) -> f64 {
        if self.total_steps == 0 {
            return self.end;
        }
        let t = (step as f64 / self.total_steps as f64).min(1.0);
        self.start + (self.end - self.start) * t
    }
}

/// The `q`-quantile of `values` (linear interpolation between order
/// statistics, matching `numpy.quantile`'s default).
///
/// # Panics
/// Panics if `values` is empty or `q ∉ [0, 1]`.
pub fn quantile(values: &[f32], q: f64) -> f32 {
    assert!(!values.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
    let mut sorted: Vec<f32> = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = (pos - lo as f64) as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Applies the rectified clamp in place:
/// `w ← max(min(w, Q(τ)), Q(1 − τ))` (paper Eq. 17).
///
/// Returns the `(lower, upper)` clamp bounds used.
///
/// # Panics
/// Panics if `weights` is empty or `τ ∉ [0.5, 1]` (below 0.5 the bounds
/// cross).
pub fn rectified_clamp(weights: &mut [f32], tau: f64) -> (f32, f32) {
    assert!(
        (0.5..=1.0).contains(&tau),
        "τ must be in [0.5, 1], got {tau}"
    );
    let upper = quantile(weights, tau);
    let lower = quantile(weights, 1.0 - tau);
    for w in weights.iter_mut() {
        *w = w.clamp(lower, upper);
    }
    (lower, upper)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_endpoints_and_median() {
        let v = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
        assert_eq!(quantile(&v, 0.5), 3.0);
        // Interpolated.
        assert!((quantile(&v, 0.25) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn quantile_unsorted_input() {
        let v = [5.0f32, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.5), 3.0);
    }

    #[test]
    fn clamp_pulls_in_outliers_only() {
        let mut w = vec![-10.0f32, -0.5, -0.1, 0.0, 0.1, 0.4, 12.0];
        let (lo, hi) = rectified_clamp(&mut w, 0.8);
        assert!(w.iter().all(|&x| x >= lo && x <= hi));
        // Interior weights untouched.
        assert_eq!(w[3], 0.0);
        assert_eq!(w[2], -0.1);
        // Outliers clamped to the bounds.
        assert_eq!(w[0], lo);
        assert_eq!(w[6], hi);
    }

    #[test]
    fn tau_one_is_identity() {
        let mut w = vec![-10.0f32, 0.0, 12.0];
        let orig = w.clone();
        rectified_clamp(&mut w, 1.0);
        assert_eq!(w, orig);
    }

    #[test]
    fn clamp_tightens_as_tau_decreases() {
        let base: Vec<f32> = (-50..=50).map(|i| i as f32 / 10.0).collect();
        let mut w9 = base.clone();
        let (lo9, hi9) = rectified_clamp(&mut w9, 0.9);
        let mut w7 = base.clone();
        let (lo7, hi7) = rectified_clamp(&mut w7, 0.7);
        assert!(hi7 < hi9 && lo7 > lo9);
    }

    #[test]
    fn schedule_anneals_linearly() {
        let s = TauSchedule::paper_default(100);
        assert!((s.tau_at(0) - 0.85).abs() < 1e-12);
        assert!((s.tau_at(50) - 0.92).abs() < 1e-12);
        assert!((s.tau_at(100) - 0.99).abs() < 1e-12);
        assert!((s.tau_at(500) - 0.99).abs() < 1e-12); // clamped after end
    }

    #[test]
    #[should_panic(expected = "τ must be in")]
    fn rejects_low_tau() {
        rectified_clamp(&mut [1.0, 2.0], 0.3);
    }
}
