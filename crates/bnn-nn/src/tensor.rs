//! A dense row-major `f32` tensor.
//!
//! Shapes are dynamic (`Vec<usize>`); the layer code mostly uses 2-D
//! (`[batch, features]`) and 4-D (`[batch, channels, height, width]`)
//! tensors. Operations are written for clarity first and cache-friendliness
//! second — the reproduction's networks are small enough that a naive
//! blocked matmul is not the bottleneck.

use serde::{Deserialize, Serialize};

/// A dense row-major tensor of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zeros tensor of the given shape.
    ///
    /// # Panics
    /// Panics on an empty shape or a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel = Self::checked_numel(shape);
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel = Self::checked_numel(shape);
        Self {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// Builds a tensor from raw data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let numel = Self::checked_numel(shape);
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {shape:?}",
            data.len()
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    fn checked_numel(shape: &[usize]) -> usize {
        assert!(!shape.is_empty(), "tensor shape must have at least one dim");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be positive, got {shape:?}"
        );
        shape.iter().product()
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable raw data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let numel = Self::checked_numel(shape);
        assert_eq!(numel, self.numel(), "reshape {:?} -> {shape:?}", self.shape);
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Element at a 2-D index.
    #[inline]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Mutable element at a 2-D index.
    #[inline]
    pub fn at2_mut(&mut self, i: usize, j: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 2);
        let cols = self.shape[1];
        &mut self.data[i * cols + j]
    }

    /// Element at a 4-D index `(n, c, h, w)`.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (_, cc, hh, ww) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Mutable element at a 4-D index.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert_eq!(self.shape.len(), 4);
        let (cc, hh, ww) = (self.shape[1], self.shape[2], self.shape[3]);
        &mut self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise binary op.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch in zip");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// `self − other`.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scales by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place `self += other * s` (the optimizer's workhorse).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Mean of absolute values — the XNOR-Net scaling factor over a slice.
    pub fn abs_mean(&self) -> f32 {
        self.data.iter().map(|x| x.abs()).sum::<f32>() / self.numel() as f32
    }

    /// Sets all elements to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// 2-D matrix multiply: `self [m×k] · other [k×n] → [m×n]`.
    ///
    /// # Panics
    /// Panics unless both tensors are 2-D with compatible inner dims.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape.len(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.shape.len(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        // ikj loop order: streams the rhs row-major.
        for i in 0..m {
            let lhs_row = &self.data[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (kk, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    /// Panics unless 2-D.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose2 needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// Index of the maximum element in each row of a 2-D tensor.
    ///
    /// # Panics
    /// Panics unless 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.len(), 2, "argmax_rows needs a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        (0..m)
            .map(|i| {
                let row = &self.data[i * n..(i + 1) * n];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .expect("rows are non-empty")
            })
            .collect()
    }

    /// Maximum absolute element (useful in tests).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at2(0, 2), 3.0);
        assert_eq!(t.at2(1, 0), 4.0);
        assert_eq!(t.numel(), 6);
    }

    #[test]
    fn four_d_indexing() {
        let mut t = Tensor::zeros(&[2, 3, 4, 5]);
        *t.at4_mut(1, 2, 3, 4) = 9.0;
        assert_eq!(t.at4(1, 2, 3, 4), 9.0);
        assert_eq!(t.data()[t.numel() - 1], 9.0);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(&[2, 2], vec![3., -1., 2., 5.]);
        let eye = Tensor::from_vec(&[2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose2();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at2(2, 1), 6.0);
        assert_eq!(t.transpose2(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[3], vec![1., -2., 3.]);
        let b = Tensor::from_vec(&[3], vec![0.5, 0.5, 0.5]);
        assert_eq!(a.add(&b).data(), &[1.5, -1.5, 3.5]);
        assert_eq!(a.sub(&b).data(), &[0.5, -2.5, 2.5]);
        assert_eq!(a.mul(&b).data(), &[0.5, -1.0, 1.5]);
        assert_eq!(a.scale(2.0).data(), &[2., -4., 6.]);
        assert!((a.abs_mean() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(&[3]);
        let g = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        a.axpy(-0.5, &g);
        assert_eq!(a.data(), &[-0.5, -1.0, -1.5]);
    }

    #[test]
    fn argmax_rows_picks_maxima() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.3, 2.0, -1.0, 0.0]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = a.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), a.data());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        Tensor::from_vec(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        Tensor::zeros(&[2, 0]);
    }
}
