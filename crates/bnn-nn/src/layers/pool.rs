//! Max pooling.

use super::{Layer, Mode, ParamRef};
use crate::tensor::Tensor;
use crate::NnRng;

/// 2-D max pooling with a square window and equal stride.
pub struct MaxPool2d {
    k: usize,
    cache: Option<Cache>,
}

struct Cache {
    input_shape: [usize; 4],
    /// Flat input index of the winning element for each output element.
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a `k × k` max pool with stride `k` (the paper's networks use
    /// 2×2/2 exclusively).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        Self { k, cache: None }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, mode: Mode, _rng: &mut NnRng) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 4, "MaxPool2d expects [N, C, H, W]");
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert!(
            h % self.k == 0 && w % self.k == 0,
            "input {h}×{w} not divisible by pool window {}",
            self.k
        );
        let (oh, ow) = (h / self.k, w / self.k);
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        let data = input.data();
        for ni in 0..n {
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for ky in 0..self.k {
                            for kx in 0..self.k {
                                let iy = oy * self.k + ky;
                                let ix = ox * self.k + kx;
                                let idx = ((ni * c + ci) * h + iy) * w + ix;
                                if data[idx] > best {
                                    best = data[idx];
                                    best_idx = idx;
                                }
                            }
                        }
                        let oidx = ((ni * c + ci) * oh + oy) * ow + ox;
                        out[oidx] = best;
                        argmax[oidx] = best_idx;
                    }
                }
            }
        }
        if mode == Mode::Train {
            self.cache = Some(Cache {
                input_shape: [n, c, h, w],
                argmax,
            });
        }
        Tensor::from_vec(&[n, c, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("MaxPool2d::backward without forward");
        let [n, c, h, w] = cache.input_shape;
        let mut din = vec![0.0f32; n * c * h * w];
        for (o, &src) in cache.argmax.iter().enumerate() {
            din[src] += grad_out.data()[o];
        }
        Tensor::from_vec(&[n, c, h, w], din)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamRef<'_>)) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    fn rng() -> NnRng {
        NnRng::seed_from_u64(2)
    }

    #[test]
    fn pools_maxima() {
        let mut pool = MaxPool2d::new(2);
        let mut r = rng();
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let y = pool.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut pool = MaxPool2d::new(2);
        let mut r = rng();
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 9., 3., 4.]);
        let _ = pool.forward(&x, Mode::Train, &mut r);
        let g = Tensor::from_vec(&[1, 1, 1, 1], vec![5.0]);
        let din = pool.backward(&g);
        assert_eq!(din.data(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn handles_negative_values() {
        let mut pool = MaxPool2d::new(2);
        let mut r = rng();
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![-5., -1., -3., -4.]);
        let y = pool.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.data(), &[-1.0]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_input() {
        let mut pool = MaxPool2d::new(2);
        let mut r = rng();
        pool.forward(&Tensor::zeros(&[1, 1, 3, 3]), Mode::Eval, &mut r);
    }
}
