//! Batch normalization for 2-D (`[N, F]`) and 4-D (`[N, C, H, W]`) inputs.
//!
//! Training uses batch statistics and updates running estimates with a
//! moving average; inference is the linear transform
//! `y = γ(x − µ)/√(σ² + ε) + β` (paper Eq. 11) — which is what BN matching
//! (Eq. 16) folds into the AQFP neuron threshold at deployment.

use super::{Layer, Mode, ParamRef};
use crate::tensor::Tensor;
use crate::NnRng;

/// Batch-normalization layer.
pub struct BatchNorm {
    channels: usize,
    /// `γ` (scale).
    gamma: Tensor,
    gamma_grad: Tensor,
    /// `β` (shift).
    beta: Tensor,
    beta_grad: Tensor,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    cache: Option<Cache>,
}

struct Cache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    shape: Vec<usize>,
}

impl BatchNorm {
    /// Creates a BN layer over `channels` features (`γ = 1`, `β = 0`,
    /// momentum 0.1, `ε = 1e-5`).
    ///
    /// # Panics
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "channels must be positive");
        Self {
            channels,
            gamma: Tensor::full(&[channels], 1.0),
            gamma_grad: Tensor::zeros(&[channels]),
            beta: Tensor::zeros(&[channels]),
            beta_grad: Tensor::zeros(&[channels]),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::full(&[channels], 1.0),
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// The inference-time affine parameters `(γ, β, µ, σ², ε)` that BN
    /// matching folds into the crossbar threshold (Eq. 16).
    pub fn folded_params(&self) -> BnParams<'_> {
        BnParams {
            gamma: self.gamma.data(),
            beta: self.beta.data(),
            mean: self.running_mean.data(),
            var: self.running_var.data(),
            eps: self.eps,
        }
    }

    /// Number of normalized channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Per-channel element count and a channel-indexed iteration helper.
    /// Returns `(channel_of_index, elements_per_channel)`.
    fn plan(shape: &[usize], channels: usize) -> (usize, usize) {
        match shape.len() {
            2 => {
                assert_eq!(shape[1], channels, "BN feature mismatch");
                (shape[0], 1)
            }
            4 => {
                assert_eq!(shape[1], channels, "BN channel mismatch");
                (shape[0], shape[2] * shape[3])
            }
            _ => panic!("BatchNorm expects 2-D or 4-D input, got {shape:?}"),
        }
    }

    fn channel_of(shape: &[usize], idx: usize) -> usize {
        match shape.len() {
            2 => idx % shape[1],
            4 => (idx / (shape[2] * shape[3])) % shape[1],
            _ => unreachable!(),
        }
    }
}

/// Borrowed view of the folded BN parameters.
#[derive(Debug, Clone, Copy)]
pub struct BnParams<'a> {
    /// Scale γ per channel.
    pub gamma: &'a [f32],
    /// Shift β per channel.
    pub beta: &'a [f32],
    /// Running mean µ per channel.
    pub mean: &'a [f32],
    /// Running variance σ² per channel.
    pub var: &'a [f32],
    /// Numerical-stability constant ε.
    pub eps: f32,
}

impl Layer for BatchNorm {
    fn forward(&mut self, input: &Tensor, mode: Mode, _rng: &mut NnRng) -> Tensor {
        let shape = input.shape().to_vec();
        let (n, per) = Self::plan(&shape, self.channels);
        let count = (n * per) as f32;

        let (mean, var) = if mode == Mode::Train {
            let mut mean = vec![0.0f32; self.channels];
            let mut var = vec![0.0f32; self.channels];
            for (i, &x) in input.data().iter().enumerate() {
                mean[Self::channel_of(&shape, i)] += x;
            }
            for m in mean.iter_mut() {
                *m /= count;
            }
            for (i, &x) in input.data().iter().enumerate() {
                let c = Self::channel_of(&shape, i);
                var[c] += (x - mean[c]) * (x - mean[c]);
            }
            for v in var.iter_mut() {
                *v /= count;
            }
            // Moving average of the running stats.
            for c in 0..self.channels {
                let rm = &mut self.running_mean.data_mut()[c];
                *rm = (1.0 - self.momentum) * *rm + self.momentum * mean[c];
                let rv = &mut self.running_var.data_mut()[c];
                *rv = (1.0 - self.momentum) * *rv + self.momentum * var[c];
            }
            (mean, var)
        } else {
            (
                self.running_mean.data().to_vec(),
                self.running_var.data().to_vec(),
            )
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
        let mut xhat = vec![0.0f32; input.numel()];
        let mut out = vec![0.0f32; input.numel()];
        for (i, &x) in input.data().iter().enumerate() {
            let c = Self::channel_of(&shape, i);
            let xh = (x - mean[c]) * inv_std[c];
            xhat[i] = xh;
            out[i] = self.gamma.data()[c] * xh + self.beta.data()[c];
        }

        if mode == Mode::Train {
            self.cache = Some(Cache {
                xhat: Tensor::from_vec(&shape, xhat),
                inv_std,
                shape: shape.clone(),
            });
        }
        Tensor::from_vec(&shape, out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("BatchNorm::backward without forward");
        let shape = cache.shape;
        assert_eq!(grad_out.shape(), &shape[..], "grad shape mismatch");
        let (n, per) = Self::plan(&shape, self.channels);
        let count = (n * per) as f32;

        // Per-channel sums of g and g·x̂.
        let mut sum_g = vec![0.0f32; self.channels];
        let mut sum_gx = vec![0.0f32; self.channels];
        for (i, &g) in grad_out.data().iter().enumerate() {
            let c = Self::channel_of(&shape, i);
            sum_g[c] += g;
            sum_gx[c] += g * cache.xhat.data()[i];
        }
        for c in 0..self.channels {
            self.beta_grad.data_mut()[c] += sum_g[c];
            self.gamma_grad.data_mut()[c] += sum_gx[c];
        }

        // dx = (γ/σ) (g − mean(g) − x̂ · mean(g·x̂))
        let mut dx = vec![0.0f32; grad_out.numel()];
        for (i, &g) in grad_out.data().iter().enumerate() {
            let c = Self::channel_of(&shape, i);
            let coef = self.gamma.data()[c] * cache.inv_std[c];
            dx[i] = coef * (g - sum_g[c] / count - cache.xhat.data()[i] * sum_gx[c] / count);
        }
        Tensor::from_vec(&shape, dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_>)) {
        f(ParamRef {
            name: "gamma",
            value: &mut self.gamma,
            grad: &mut self.gamma_grad,
            decay: false,
        });
        f(ParamRef {
            name: "beta",
            value: &mut self.beta,
            grad: &mut self.beta_grad,
            decay: false,
        });
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "BatchNorm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    fn rng() -> NnRng {
        NnRng::seed_from_u64(1)
    }

    #[test]
    fn normalizes_batch_statistics() {
        let mut bn = BatchNorm::new(2);
        let mut r = rng();
        // Channel 0: {1, 3}; channel 1: {10, 30}.
        let x = Tensor::from_vec(&[2, 2], vec![1., 10., 3., 30.]);
        let y = bn.forward(&x, Mode::Train, &mut r);
        // Each channel normalized to mean 0, var 1: values ±1.
        assert!((y.at2(0, 0) + 1.0).abs() < 1e-3);
        assert!((y.at2(1, 0) - 1.0).abs() < 1e-3);
        assert!((y.at2(0, 1) + 1.0).abs() < 1e-3);
        assert!((y.at2(1, 1) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn four_d_normalizes_per_channel() {
        let mut bn = BatchNorm::new(2);
        let mut r = rng();
        let x = Tensor::from_vec(&[1, 2, 2, 2], vec![1., 2., 3., 4., 10., 20., 30., 40.]);
        let y = bn.forward(&x, Mode::Train, &mut r);
        // Mean over each channel's 4 pixels is 0 after normalization.
        let c0: f32 = (0..2)
            .flat_map(|h| (0..2).map(move |w| (h, w)))
            .map(|(h, w)| y.at4(0, 0, h, w))
            .sum();
        assert!(c0.abs() < 1e-4);
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm::new(1);
        let mut r = rng();
        // Train a few steps on data with mean 5, std ~2.
        for _ in 0..200 {
            let x = Tensor::from_vec(&[4, 1], vec![3., 5., 5., 7.]);
            let _ = bn.forward(&x, Mode::Train, &mut r);
        }
        // Running mean converges toward 5.
        assert!((bn.running_mean.data()[0] - 5.0).abs() < 0.1);
        // In eval, feeding the mean value returns ~β = 0.
        let y = bn.forward(&Tensor::from_vec(&[1, 1], vec![5.0]), Mode::Eval, &mut r);
        assert!(y.data()[0].abs() < 0.1);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut bn = BatchNorm::new(2);
        let mut r = rng();
        bn.gamma.data_mut().copy_from_slice(&[1.5, 0.7]);
        bn.beta.data_mut().copy_from_slice(&[0.2, -0.3]);
        let mut x = Tensor::from_vec(&[3, 2], vec![1., 2., -1., 4., 0.5, -2.]);

        let y = bn.forward(&x, Mode::Train, &mut r);
        let din = bn.backward(&y);
        let gamma_grad = bn.gamma_grad.clone();

        // Finite differences must freeze the running stats; clone the layer
        // and run Train-mode forwards on a copy each time. Since momentum
        // only affects running stats (not the output), reuse is safe here.
        let loss = |bn: &mut BatchNorm, r: &mut NnRng, x: &Tensor| -> f32 {
            let o = bn.forward(x, Mode::Train, r);
            0.5 * o.data().iter().map(|v| v * v).sum::<f32>()
        };
        let h = 1e-3f32;
        for idx in 0..6 {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + h;
            let lp = loss(&mut bn, &mut r, &x);
            x.data_mut()[idx] = orig - h;
            let lm = loss(&mut bn, &mut r, &x);
            x.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - din.data()[idx]).abs() < 2e-2 * (1.0 + fd.abs()),
                "input idx {idx}: {fd} vs {}",
                din.data()[idx]
            );
        }
        for c in 0..2 {
            let orig = bn.gamma.data()[c];
            bn.gamma.data_mut()[c] = orig + h;
            let lp = loss(&mut bn, &mut r, &x);
            bn.gamma.data_mut()[c] = orig - h;
            let lm = loss(&mut bn, &mut r, &x);
            bn.gamma.data_mut()[c] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - gamma_grad.data()[c]).abs() < 2e-2 * (1.0 + fd.abs()),
                "gamma {c}: {fd} vs {}",
                gamma_grad.data()[c]
            );
        }
    }

    #[test]
    #[should_panic(expected = "2-D or 4-D")]
    fn rejects_3d_input() {
        let mut bn = BatchNorm::new(2);
        let mut r = rng();
        bn.forward(&Tensor::zeros(&[1, 2, 3]), Mode::Train, &mut r);
    }
}
