//! Neural-network layers with explicit forward/backward passes.
//!
//! Layers cache whatever their backward pass needs during `forward`; calling
//! `backward` without a preceding `forward` panics. Parameters are exposed
//! through [`Layer::visit_params`] in a stable order so the optimizer can
//! associate momentum state by position.

mod act;
mod batchnorm;
mod conv;
mod flatten;
mod im2col;
mod linear;
mod pool;
mod residual;

pub use act::{BinActivation, HardTanh};
pub use batchnorm::BatchNorm;
pub use conv::Conv2d;
pub use flatten::Flatten;
pub use im2col::{col2im, im2col, im2col_filled};
pub use linear::Linear;
pub use pool::MaxPool2d;
pub use residual::Residual;

use crate::tensor::Tensor;
use crate::NnRng;

/// Whether a forward pass is part of training or evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: batch statistics, stochastic sampling, caching for backward.
    Train,
    /// Evaluation: running statistics; stochastic layers still sample if
    /// their binarizer is randomized (hardware-faithful evaluation).
    Eval,
}

/// A mutable view of one parameter tensor and its gradient.
pub struct ParamRef<'a> {
    /// Human-readable name (`"conv1.weight"` style names are assembled by
    /// the container).
    pub name: &'static str,
    /// The parameter values.
    pub value: &'a mut Tensor,
    /// The accumulated gradient (same shape).
    pub grad: &'a mut Tensor,
    /// Whether weight decay applies (BN affine parameters opt out).
    pub decay: bool,
}

/// A neural-network layer.
pub trait Layer: std::any::Any {
    /// Computes the layer output, caching for backward when `mode` is
    /// [`Mode::Train`].
    fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut NnRng) -> Tensor;

    /// Propagates `grad_out` to the input gradient, accumulating parameter
    /// gradients.
    ///
    /// # Panics
    /// Panics if no training forward pass preceded this call.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits all `(value, grad)` parameter pairs in a stable order.
    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamRef<'_>)) {}

    /// A short kind name for debugging and reports.
    fn name(&self) -> &'static str;

    /// Upcast for deployment-time downcasting (weight extraction when a
    /// trained model is mapped onto crossbars).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast (e.g. re-targeting a binarizer).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}
