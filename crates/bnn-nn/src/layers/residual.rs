//! Residual block: `y = body(x) + shortcut(x)`.
//!
//! The building block of the binary ResNet-18 variant (paper Table 2
//! evaluates "Ours (ResNet-18)"). BNNs keep the skip connection in full
//! precision (Bi-Real-Net style) — here the shortcut is either the identity
//! or a small sub-network (1×1 convolution + BN for dimension changes).

use super::{Layer, Mode, ParamRef};
use crate::model::Sequential;
use crate::tensor::Tensor;
use crate::NnRng;

/// A residual block.
pub struct Residual {
    body: Sequential,
    /// `None` = identity shortcut (shapes must already match).
    shortcut: Option<Sequential>,
}

impl Residual {
    /// Creates a block with an identity shortcut.
    pub fn new(body: Sequential) -> Self {
        Self {
            body,
            shortcut: None,
        }
    }

    /// Creates a block with a projection shortcut (e.g. 1×1 conv + BN for
    /// channel/stride changes).
    pub fn with_shortcut(body: Sequential, shortcut: Sequential) -> Self {
        Self {
            body,
            shortcut: Some(shortcut),
        }
    }

    /// The main path (for deployment-time introspection).
    pub fn body(&self) -> &Sequential {
        &self.body
    }

    /// The projection shortcut, if any.
    pub fn shortcut(&self) -> Option<&Sequential> {
        self.shortcut.as_ref()
    }
}

impl Layer for Residual {
    fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut NnRng) -> Tensor {
        let main = self.body.forward(input, mode, rng);
        let skip = match &mut self.shortcut {
            Some(s) => s.forward(input, mode, rng),
            None => input.clone(),
        };
        assert_eq!(
            main.shape(),
            skip.shape(),
            "residual paths disagree: body {:?} vs shortcut {:?}",
            main.shape(),
            skip.shape()
        );
        main.add(&skip)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g_body = self.body.backward(grad_out);
        let g_skip = match &mut self.shortcut {
            Some(s) => s.backward(grad_out),
            None => grad_out.clone(),
        };
        g_body.add(&g_skip)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_>)) {
        self.body.visit_params(f);
        if let Some(s) = &mut self.shortcut {
            s.visit_params(f);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "Residual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{HardTanh, Linear};
    use crate::SeedableRng;

    #[test]
    fn identity_shortcut_adds_input() {
        let mut r = NnRng::seed_from_u64(0);
        let mut body = Sequential::new();
        let mut lin = Linear::new(2, 2, false, &mut r);
        lin.weight_mut()
            .data_mut()
            .copy_from_slice(&[1., 0., 0., 1.]);
        body.push(lin);
        let mut res = Residual::new(body);
        let x = Tensor::from_vec(&[1, 2], vec![3.0, -1.0]);
        let y = res.forward(&x, Mode::Eval, &mut r);
        // identity body + identity skip = 2x
        assert_eq!(y.data(), &[6.0, -2.0]);
    }

    #[test]
    fn gradient_flows_through_both_paths() {
        let mut r = NnRng::seed_from_u64(1);
        let mut body = Sequential::new();
        body.push(Linear::new(2, 2, false, &mut r));
        body.push(HardTanh::new());
        let mut res = Residual::new(body);
        let x = Tensor::from_vec(&[1, 2], vec![0.1, -0.2]);
        let y = res.forward(&x, Mode::Train, &mut r);
        let din = res.backward(&y);

        // Finite difference on the input.
        let loss = |res: &mut Residual, r: &mut NnRng, x: &Tensor| -> f32 {
            let o = res.forward(x, Mode::Train, r);
            0.5 * o.data().iter().map(|v| v * v).sum::<f32>()
        };
        let mut x = x;
        let h = 1e-3f32;
        for idx in 0..2 {
            let orig = x.data()[idx];
            x.data_mut()[idx] = orig + h;
            let lp = loss(&mut res, &mut r, &x);
            x.data_mut()[idx] = orig - h;
            let lm = loss(&mut res, &mut r, &x);
            x.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - din.data()[idx]).abs() < 1e-2 * (1.0 + fd.abs()),
                "idx {idx}: {fd} vs {}",
                din.data()[idx]
            );
        }
    }

    #[test]
    fn projection_shortcut_changes_shape() {
        let mut r = NnRng::seed_from_u64(2);
        let mut body = Sequential::new();
        body.push(Linear::new(2, 3, false, &mut r));
        let mut proj = Sequential::new();
        proj.push(Linear::new(2, 3, false, &mut r));
        let mut res = Residual::with_shortcut(body, proj);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        let y = res.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.shape(), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "residual paths disagree")]
    fn mismatched_shapes_panic() {
        let mut r = NnRng::seed_from_u64(3);
        let mut body = Sequential::new();
        body.push(Linear::new(2, 3, false, &mut r));
        let mut res = Residual::new(body); // identity skip keeps 2 features
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        res.forward(&x, Mode::Eval, &mut r);
    }
}
