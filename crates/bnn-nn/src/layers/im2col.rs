//! im2col / col2im: convolution as matrix multiplication.

use crate::tensor::Tensor;

/// Output spatial size of a convolution dimension.
pub(crate) fn conv_out(size: usize, k: usize, stride: usize, pad: usize) -> usize {
    (size + 2 * pad - k) / stride + 1
}

/// Unfolds `input` of shape `[N, C, H, W]` into a matrix of shape
/// `[C·k·k, N·Hout·Wout]`, where column `n·Hout·Wout + oh·Wout + ow` holds
/// the receptive field of output pixel `(oh, ow)` of sample `n`.
/// Out-of-bounds (padding) positions contribute zeros.
///
/// # Panics
/// Panics unless `input` is 4-D and the geometry is valid.
pub fn im2col(input: &Tensor, k: usize, stride: usize, pad: usize) -> Tensor {
    im2col_filled(input, k, stride, pad, 0.0)
}

/// [`im2col`] with an explicit padding fill value.
///
/// BNN deployments pad with −1 (logic '0' carries the value −1 on AQFP
/// hardware, and there is no analog zero), so training with `fill = −1.0`
/// keeps software and crossbar outputs bit-exact at the borders.
pub fn im2col_filled(input: &Tensor, k: usize, stride: usize, pad: usize, fill: f32) -> Tensor {
    let shape = input.shape();
    assert_eq!(shape.len(), 4, "im2col expects [N, C, H, W]");
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    assert!(k > 0 && stride > 0, "kernel and stride must be positive");
    assert!(
        h + 2 * pad >= k && w + 2 * pad >= k,
        "kernel exceeds padded input"
    );
    let oh = conv_out(h, k, stride, pad);
    let ow = conv_out(w, k, stride, pad);

    let rows = c * k * k;
    let cols = n * oh * ow;
    let mut out = vec![fill; rows * cols];
    let data = input.data();

    for ni in 0..n {
        for ci in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ci * k + ky) * k + kx;
                    for oy in 0..oh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let col = (ni * oh + oy) * ow + ox;
                            let src = ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                            out[row * cols + col] = data[src];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(&[rows, cols], out)
}

/// Folds a `[C·k·k, N·Hout·Wout]` matrix back into `[N, C, H, W]`,
/// *accumulating* overlapping contributions — the adjoint of [`im2col`],
/// used for the convolution input gradient.
#[allow(clippy::too_many_arguments)] // geometry is irreducibly 5 scalars
pub fn col2im(
    cols_mat: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> Tensor {
    let oh = conv_out(h, k, stride, pad);
    let ow = conv_out(w, k, stride, pad);
    let rows = c * k * k;
    let cols = n * oh * ow;
    assert_eq!(
        cols_mat.shape(),
        &[rows, cols],
        "col matrix shape mismatch for geometry"
    );
    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols_mat.data();

    for ni in 0..n {
        for ci in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ci * k + ky) * k + kx;
                    for oy in 0..oh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let col = (ni * oh + oy) * ow + ox;
                            let dst = ((ni * c + ci) * h + iy as usize) * w + ix as usize;
                            out[dst] += data[row * cols + col];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(&[n, c, h, w], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_no_pad() {
        // 1×1 kernel, stride 1: im2col is a flat copy.
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let cols = im2col(&input, 1, 1, 0);
        assert_eq!(cols.shape(), &[1, 4]);
        assert_eq!(cols.data(), input.data());
    }

    #[test]
    fn known_3x3_patch() {
        // 3×3 input, 2×2 kernel, stride 1, no pad → 4 patches.
        let input = Tensor::from_vec(&[1, 1, 3, 3], vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let cols = im2col(&input, 2, 1, 0);
        assert_eq!(cols.shape(), &[4, 4]);
        // First column = top-left patch (1,2,4,5) down the rows.
        let col0: Vec<f32> = (0..4).map(|r| cols.at2(r, 0)).collect();
        assert_eq!(col0, vec![1., 2., 4., 5.]);
        // Last column = bottom-right patch (5,6,8,9).
        let col3: Vec<f32> = (0..4).map(|r| cols.at2(r, 3)).collect();
        assert_eq!(col3, vec![5., 6., 8., 9.]);
    }

    #[test]
    fn padding_adds_zero_border() {
        let input = Tensor::from_vec(&[1, 1, 1, 1], vec![7.0]);
        // 3×3 kernel, pad 1: single output pixel whose centre is the input.
        let cols = im2col(&input, 3, 1, 1);
        assert_eq!(cols.shape(), &[9, 1]);
        let vals: Vec<f32> = (0..9).map(|r| cols.at2(r, 0)).collect();
        assert_eq!(vals, vec![0., 0., 0., 0., 7., 0., 0., 0., 0.]);
    }

    #[test]
    fn batch_dimension_ordering() {
        let input = Tensor::from_vec(&[2, 1, 1, 1], vec![3.0, 5.0]);
        let cols = im2col(&input, 1, 1, 0);
        assert_eq!(cols.shape(), &[1, 2]);
        assert_eq!(cols.data(), &[3.0, 5.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y — the
        // defining property of the transpose operator the backward pass
        // relies on.
        let (n, c, h, w, k, s, p) = (2usize, 2, 4, 4, 3, 1, 1);
        let x = Tensor::from_vec(
            &[n, c, h, w],
            (0..n * c * h * w)
                .map(|i| ((i * 37 % 11) as f32) - 5.0)
                .collect(),
        );
        let cols = im2col(&x, k, s, p);
        let y = Tensor::from_vec(
            cols.shape(),
            (0..cols.numel())
                .map(|i| ((i * 53 % 13) as f32) - 6.0)
                .collect(),
        );
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, n, c, h, w, k, s, p);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn stride_two_downsamples() {
        let input = Tensor::from_vec(&[1, 1, 4, 4], (1..=16).map(|i| i as f32).collect());
        let cols = im2col(&input, 2, 2, 0);
        // 2×2 output positions; the patch at output (0,0) is 1,2,5,6.
        assert_eq!(cols.shape(), &[4, 4]);
        let col0: Vec<f32> = (0..4).map(|r| cols.at2(r, 0)).collect();
        assert_eq!(col0, vec![1., 2., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "kernel exceeds")]
    fn oversized_kernel_panics() {
        let input = Tensor::zeros(&[1, 1, 2, 2]);
        im2col(&input, 5, 1, 0);
    }
}
