//! Flattening between the convolutional trunk and the classifier head.

use super::{Layer, Mode, ParamRef};
use crate::tensor::Tensor;
use crate::NnRng;

/// Reshapes `[N, C, H, W]` (or any rank ≥ 2) to `[N, rest]`.
pub struct Flatten {
    cache: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates the layer.
    pub fn new() -> Self {
        Self { cache: None }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, mode: Mode, _rng: &mut NnRng) -> Tensor {
        let shape = input.shape().to_vec();
        assert!(shape.len() >= 2, "Flatten expects a batch dimension");
        let n = shape[0];
        let rest: usize = shape[1..].iter().product();
        if mode == Mode::Train {
            self.cache = Some(shape);
        }
        input.reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cache
            .take()
            .expect("Flatten::backward without forward");
        grad_out.reshape(&shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamRef<'_>)) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    #[test]
    fn flattens_and_restores() {
        let mut fl = Flatten::new();
        let mut r = NnRng::seed_from_u64(0);
        let x = Tensor::from_vec(&[2, 2, 1, 2], (0..8).map(|i| i as f32).collect());
        let y = fl.forward(&x, Mode::Train, &mut r);
        assert_eq!(y.shape(), &[2, 4]);
        let back = fl.backward(&y);
        assert_eq!(back.shape(), &[2, 2, 1, 2]);
        assert_eq!(back.data(), x.data());
    }
}
