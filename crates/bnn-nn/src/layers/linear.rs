//! Fully-connected layer, optionally with XNOR-Net binarized weights.

use super::{Layer, Mode, ParamRef};
use crate::binarize::binarize_weights;
use crate::tensor::Tensor;
use crate::NnRng;
use rand::Rng;

/// A fully-connected layer `y = x Wᵀ + b`.
///
/// With `binary_weights` the forward uses `α_o·sign(W_o)` per output unit
/// and the backward applies the straight-through estimator (paper Eq. 9).
pub struct Linear {
    in_features: usize,
    out_features: usize,
    binary_weights: bool,
    /// Shape `[out, in]`.
    weight: Tensor,
    weight_grad: Tensor,
    bias: Tensor,
    bias_grad: Tensor,
    cache: Option<Cache>,
}

struct Cache {
    input: Tensor,
    alphas: Vec<f32>,
}

impl Linear {
    /// Creates a layer with Kaiming-uniform weights and zero bias.
    ///
    /// # Panics
    /// Panics on zero dimensions.
    pub fn new(
        in_features: usize,
        out_features: usize,
        binary_weights: bool,
        rng: &mut NnRng,
    ) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "dimensions must be positive"
        );
        let bound = (6.0 / in_features as f32).sqrt();
        let data = (0..out_features * in_features)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self {
            in_features,
            out_features,
            binary_weights,
            weight: Tensor::from_vec(&[out_features, in_features], data),
            weight_grad: Tensor::zeros(&[out_features, in_features]),
            bias: Tensor::zeros(&[out_features]),
            bias_grad: Tensor::zeros(&[out_features]),
            cache: None,
        }
    }

    /// The latent weights, shape `[out, in]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable latent weights.
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Whether weights are binarized in the forward pass.
    pub fn is_binary(&self) -> bool {
        self.binary_weights
    }

    /// `(in_features, out_features)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.in_features, self.out_features)
    }

    /// Eval-time fast path for binarized weights on ±1 inputs: the XNOR +
    /// popcount GEMM `α_o · dot(sign(W_o), sign(x)) + b_o` over packed
    /// bitplanes (see [`crate::packed`]). The integer dots are exact;
    /// outputs can differ from [`Layer::forward`](super::Layer::forward)
    /// only in the last ulp because α scales the whole dot instead of each
    /// term. Inputs are read by sign, so callers must feed ±1 activations
    /// (the output of any binarize layer).
    ///
    /// # Panics
    /// Panics unless the layer has binary weights and `input` is
    /// `[N, in_features]`.
    pub fn forward_binary_packed(&self, input: &Tensor) -> Tensor {
        assert!(self.binary_weights, "packed path needs binary weights");
        assert_eq!(input.shape().len(), 2, "Linear expects [N, features]");
        assert_eq!(input.shape()[1], self.in_features, "feature mismatch");
        let n = input.shape()[0];
        let w = crate::packed::pack_sign_rows(&self.weight);
        let acts = crate::packed::pack_sign_rows(input);
        let dots = crate::packed::sign_gemm(&w, &acts);
        let alphas: Vec<f32> = (0..self.out_features)
            .map(|o| {
                let row = &self.weight.data()[o * self.in_features..(o + 1) * self.in_features];
                binarize_weights(row).1
            })
            .collect();
        let mut out = vec![0.0f32; n * self.out_features];
        for o in 0..self.out_features {
            for i in 0..n {
                out[i * self.out_features + o] =
                    alphas[o] * dots[o * n + i] as f32 + self.bias.data()[o];
            }
        }
        Tensor::from_vec(&[n, self.out_features], out)
    }

    /// Effective forward weights and per-output α (see
    /// [`Conv2d::effective_weight`](super::Conv2d::effective_weight)).
    pub fn effective_weight(&self) -> (Tensor, Vec<f32>) {
        if !self.binary_weights {
            return (self.weight.clone(), vec![1.0; self.out_features]);
        }
        let mut data = Vec::with_capacity(self.weight.numel());
        let mut alphas = Vec::with_capacity(self.out_features);
        for o in 0..self.out_features {
            let row = &self.weight.data()[o * self.in_features..(o + 1) * self.in_features];
            let (signs, alpha) = binarize_weights(row);
            alphas.push(alpha);
            data.extend(signs.into_iter().map(|s| s * alpha));
        }
        (
            Tensor::from_vec(&[self.out_features, self.in_features], data),
            alphas,
        )
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, mode: Mode, _rng: &mut NnRng) -> Tensor {
        assert_eq!(input.shape().len(), 2, "Linear expects [N, features]");
        assert_eq!(input.shape()[1], self.in_features, "feature mismatch");
        let (weff, alphas) = self.effective_weight();
        let mut out = input.matmul(&weff.transpose2());
        let n = input.shape()[0];
        for i in 0..n {
            for o in 0..self.out_features {
                *out.at2_mut(i, o) += self.bias.data()[o];
            }
        }
        if mode == Mode::Train {
            self.cache = Some(Cache {
                input: input.clone(),
                alphas,
            });
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("Linear::backward without forward");
        // dW_eff = grad_outᵀ · input; STE passes it to the latent weights.
        let dweff = grad_out.transpose2().matmul(&cache.input);
        self.weight_grad.axpy(1.0, &dweff);
        // Bias gradient: column sums.
        let n = grad_out.shape()[0];
        for i in 0..n {
            for o in 0..self.out_features {
                self.bias_grad.data_mut()[o] += grad_out.at2(i, o);
            }
        }
        // Input gradient through the effective weights.
        let weff = if self.binary_weights {
            let mut data = Vec::with_capacity(self.weight.numel());
            for o in 0..self.out_features {
                let row = &self.weight.data()[o * self.in_features..(o + 1) * self.in_features];
                for &v in row {
                    let s = if v >= 0.0 { 1.0 } else { -1.0 };
                    data.push(s * cache.alphas[o]);
                }
            }
            Tensor::from_vec(&[self.out_features, self.in_features], data)
        } else {
            self.weight.clone()
        };
        grad_out.matmul(&weff)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_>)) {
        f(ParamRef {
            name: "weight",
            value: &mut self.weight,
            grad: &mut self.weight_grad,
            decay: true,
        });
        f(ParamRef {
            name: "bias",
            value: &mut self.bias,
            grad: &mut self.bias_grad,
            decay: false,
        });
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        if self.binary_weights {
            "BinLinear"
        } else {
            "Linear"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    fn rng() -> NnRng {
        NnRng::seed_from_u64(7)
    }

    #[test]
    fn forward_known_values() {
        let mut r = rng();
        let mut lin = Linear::new(2, 2, false, &mut r);
        lin.weight_mut()
            .data_mut()
            .copy_from_slice(&[1., 2., 3., 4.]);
        let input = Tensor::from_vec(&[1, 2], vec![1., 1.]);
        let out = lin.forward(&input, Mode::Eval, &mut r);
        assert_eq!(out.data(), &[3., 7.]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut r = rng();
        let mut lin = Linear::new(3, 2, false, &mut r);
        let input = Tensor::from_vec(&[2, 3], vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5]);
        let out = lin.forward(&input, Mode::Train, &mut r);
        let din = lin.backward(&out);

        let loss = |lin: &mut Linear, r: &mut NnRng, x: &Tensor| -> f32 {
            let o = lin.forward(x, Mode::Eval, r);
            0.5 * o.data().iter().map(|v| v * v).sum::<f32>()
        };
        let h = 1e-3f32;
        // Weight grads.
        for idx in 0..6 {
            let orig = lin.weight.data()[idx];
            lin.weight.data_mut()[idx] = orig + h;
            let lp = loss(&mut lin, &mut r, &input);
            lin.weight.data_mut()[idx] = orig - h;
            let lm = loss(&mut lin, &mut r, &input);
            lin.weight.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - lin.weight_grad.data()[idx]).abs() < 1e-2 * (1.0 + fd.abs()),
                "weight idx {idx}"
            );
        }
        // Input grads.
        let mut input = input;
        for idx in 0..6 {
            let orig = input.data()[idx];
            input.data_mut()[idx] = orig + h;
            let lp = loss(&mut lin, &mut r, &input);
            input.data_mut()[idx] = orig - h;
            let lm = loss(&mut lin, &mut r, &input);
            input.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - din.data()[idx]).abs() < 1e-2 * (1.0 + fd.abs()),
                "input idx {idx}"
            );
        }
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut r = rng();
        let mut lin = Linear::new(2, 2, false, &mut r);
        let input = Tensor::from_vec(&[3, 2], vec![1., 0., 0., 1., 1., 1.]);
        let _ = lin.forward(&input, Mode::Train, &mut r);
        let g = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let _ = lin.backward(&g);
        assert_eq!(lin.bias_grad.data(), &[9., 12.]);
    }

    #[test]
    fn packed_binary_forward_matches_integer_reference() {
        let mut r = rng();
        let (fan_in, out, n) = (70, 5, 3); // ragged width: 70 % 64 != 0
        let mut lin = Linear::new(fan_in, out, true, &mut r);
        let input = Tensor::from_vec(
            &[n, fan_in],
            (0..n * fan_in)
                .map(|i| if (i * 7) % 3 == 0 { 1.0 } else { -1.0 })
                .collect(),
        );
        let packed = lin.forward_binary_packed(&input);
        assert_eq!(packed.shape(), &[n, out]);
        for i in 0..n {
            for o in 0..out {
                let wrow = &lin.weight.data()[o * fan_in..(o + 1) * fan_in];
                let dot: i32 = wrow
                    .iter()
                    .zip(&input.data()[i * fan_in..(i + 1) * fan_in])
                    .map(|(&wv, &xv)| {
                        let s = if wv >= 0.0 { 1 } else { -1 };
                        let a = if xv >= 0.0 { 1 } else { -1 };
                        s * a
                    })
                    .sum();
                let alpha = wrow.iter().map(|v| v.abs()).sum::<f32>() / fan_in as f32;
                let expect = alpha * dot as f32 + lin.bias.data()[o];
                assert_eq!(packed.at2(i, o).to_bits(), expect.to_bits(), "({i},{o})");
            }
        }
        // And it agrees with the float forward to rounding error.
        let reference = lin.forward(&input, Mode::Eval, &mut r);
        for (a, b) in packed.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn binary_linear_uses_sign_alpha() {
        let mut r = rng();
        let mut lin = Linear::new(2, 1, true, &mut r);
        lin.weight_mut().data_mut().copy_from_slice(&[0.5, -1.5]);
        let input = Tensor::from_vec(&[1, 2], vec![1., 1.]);
        let out = lin.forward(&input, Mode::Eval, &mut r);
        // α = 1.0; signs (+1, −1): 1·1 + 1·(−1) = 0.
        assert!((out.data()[0]).abs() < 1e-6);
    }
}
