//! Activation layers: HardTanh and the binarization layer.

use super::{Layer, Mode, ParamRef};
use crate::binarize::Binarizer;
use crate::tensor::Tensor;
use crate::NnRng;

/// `HardTanh(x) = clamp(x, −1, 1)` — the activation used between BN and
/// binarization in the paper's BNN cell (Fig. 8a).
pub struct HardTanh {
    cache: Option<Tensor>,
}

impl HardTanh {
    /// Creates the activation.
    pub fn new() -> Self {
        Self { cache: None }
    }
}

impl Default for HardTanh {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for HardTanh {
    fn forward(&mut self, input: &Tensor, mode: Mode, _rng: &mut NnRng) -> Tensor {
        if mode == Mode::Train {
            self.cache = Some(input.clone());
        }
        input.map(|x| x.clamp(-1.0, 1.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cache
            .take()
            .expect("HardTanh::backward without forward");
        grad_out.zip(
            &input,
            |g, x| if (-1.0..=1.0).contains(&x) { g } else { 0.0 },
        )
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamRef<'_>)) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "HardTanh"
    }
}

/// Activation binarization (the paper's Eq. 7 forward / Eq. 10 backward).
///
/// With a deterministic binarizer this is the classical BNN sign layer with
/// the clipped STE. With a randomized binarizer the forward pass *samples*
/// the AQFP output distribution and the backward pass differentiates the
/// expected activation — the core of AQFP-aware training.
pub struct BinActivation {
    binarizer: Binarizer,
    cache: Option<Tensor>,
}

impl BinActivation {
    /// Creates the layer.
    pub fn new(binarizer: Binarizer) -> Self {
        Self {
            binarizer,
            cache: None,
        }
    }

    /// The configured binarizer.
    pub fn binarizer(&self) -> Binarizer {
        self.binarizer
    }

    /// Replaces the binarizer (used when re-targeting a trained model to a
    /// different hardware configuration).
    pub fn set_binarizer(&mut self, binarizer: Binarizer) {
        self.binarizer = binarizer;
    }
}

impl Layer for BinActivation {
    fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut NnRng) -> Tensor {
        if mode == Mode::Train {
            self.cache = Some(input.clone());
        }
        let b = self.binarizer;
        Tensor::from_vec(
            input.shape(),
            input
                .data()
                .iter()
                .map(|&x| b.forward_sample(x, rng))
                .collect(),
        )
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cache
            .take()
            .expect("BinActivation::backward without forward");
        let b = self.binarizer;
        grad_out.zip(&input, |g, x| g * b.backward(x))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(ParamRef<'_>)) {}

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        "BinActivation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;
    use aqfp_device::GrayZone;

    fn rng() -> NnRng {
        NnRng::seed_from_u64(4)
    }

    #[test]
    fn hardtanh_clamps() {
        let mut ht = HardTanh::new();
        let mut r = rng();
        let x = Tensor::from_vec(&[4], vec![-2.0, -0.5, 0.5, 2.0]);
        let y = ht.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.data(), &[-1.0, -0.5, 0.5, 1.0]);
    }

    #[test]
    fn hardtanh_gradient_masks_saturation() {
        let mut ht = HardTanh::new();
        let mut r = rng();
        let x = Tensor::from_vec(&[4], vec![-2.0, -0.5, 0.5, 2.0]);
        let _ = ht.forward(&x, Mode::Train, &mut r);
        let g = Tensor::from_vec(&[4], vec![1.0; 4]);
        let din = ht.backward(&g);
        assert_eq!(din.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn deterministic_binactivation_is_sign() {
        let mut act = BinActivation::new(Binarizer::Deterministic);
        let mut r = rng();
        let x = Tensor::from_vec(&[3], vec![-0.3, 0.0, 0.8]);
        let y = act.forward(&x, Mode::Eval, &mut r);
        assert_eq!(y.data(), &[-1.0, 1.0, 1.0]);
    }

    #[test]
    fn randomized_binactivation_samples() {
        let law = GrayZone::new(0.0, 1.0);
        let mut act = BinActivation::new(Binarizer::Randomized(law));
        let mut r = rng();
        let x = Tensor::from_vec(&[2000], vec![0.2; 2000]);
        let y = act.forward(&x, Mode::Eval, &mut r);
        let frac_plus = y.data().iter().filter(|&&v| v > 0.0).count() as f64 / 2000.0;
        let p = law.probability_one(0.2);
        assert!((frac_plus - p).abs() < 0.04, "{frac_plus} vs {p}");
        // Outputs are exactly ±1.
        assert!(y.data().iter().all(|&v| v == 1.0 || v == -1.0));
    }

    #[test]
    fn randomized_backward_uses_erf_gradient() {
        let law = GrayZone::new(0.0, 1.0);
        let mut act = BinActivation::new(Binarizer::Randomized(law));
        let mut r = rng();
        let x = Tensor::from_vec(&[2], vec![0.0, 5.0]);
        let _ = act.forward(&x, Mode::Train, &mut r);
        let g = Tensor::from_vec(&[2], vec![1.0, 1.0]);
        let din = act.backward(&g);
        // At the threshold the surrogate gradient peaks at exactly 1; far
        // away it decays to ~0 (no gradient through saturated activations).
        assert!((din.data()[0] - 1.0).abs() < 1e-6);
        assert!(din.data()[1].abs() < 1e-6);
    }
}
