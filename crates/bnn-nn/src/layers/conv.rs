//! 2-D convolution, optionally with XNOR-Net binarized weights.

use super::im2col::{col2im, conv_out, im2col_filled};
use super::{Layer, Mode, ParamRef};
use crate::binarize::binarize_weights;
use crate::tensor::Tensor;
use crate::NnRng;
use rand::Rng;

/// A 2-D convolution layer (no bias — every convolution in the paper's
/// networks is followed by batch normalization, which absorbs any bias).
///
/// With `binary_weights`, the forward pass uses `α_o · sign(W_o)` per output
/// channel (`α_o` the L1 mean of that filter, XNOR-Net) and the backward
/// pass applies the straight-through estimator of paper Eq. 9
/// (`∂L/∂wr ≈ ∂L/∂wb`).
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    pad_value: f32,
    binary_weights: bool,
    /// Real-valued latent weights, shape `[out, in·k·k]`.
    weight: Tensor,
    weight_grad: Tensor,
    cache: Option<Cache>,
}

struct Cache {
    cols: Tensor,
    input_shape: [usize; 4],
    /// Per-output-channel α when binarized (1.0 otherwise).
    alphas: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-uniform initialized weights.
    ///
    /// # Panics
    /// Panics on zero dimensions.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        binary_weights: bool,
        rng: &mut NnRng,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
            "convolution dimensions must be positive"
        );
        let fan_in = in_channels * kernel * kernel;
        let bound = (6.0 / fan_in as f32).sqrt();
        let data = (0..out_channels * fan_in)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Self {
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            pad_value: 0.0,
            binary_weights,
            weight: Tensor::from_vec(&[out_channels, fan_in], data),
            weight_grad: Tensor::zeros(&[out_channels, fan_in]),
            cache: None,
        }
    }

    /// Sets the padding fill value (BNN deployments use −1; see
    /// [`im2col_filled`]). Returns `self` for builder-style use.
    #[must_use]
    pub fn with_pad_value(mut self, fill: f32) -> Self {
        self.pad_value = fill;
        self
    }

    /// The padding fill value.
    pub fn pad_value(&self) -> f32 {
        self.pad_value
    }

    /// The latent real-valued weights, shape `[out, in·k·k]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable latent weights (ReCU clamps these between steps).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// Whether the forward pass binarizes the weights.
    pub fn is_binary(&self) -> bool {
        self.binary_weights
    }

    /// `(in_channels, out_channels, kernel, stride, pad)`.
    pub fn geometry(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.in_channels,
            self.out_channels,
            self.kernel,
            self.stride,
            self.pad,
        )
    }

    /// Eval-time fast path for binarized weights on ±1 inputs: bitplane
    /// im2col → packed XNOR + popcount GEMM, producing
    /// `α_o · dot(sign(W_o), field)` per output pixel. Receptive fields
    /// are gathered by [`aqfp_sc::bitplane::packed_im2col`] — whole `u64`
    /// words per kernel row — which is the *same* gather kernel the
    /// crossbar deploy engine's packed conv stage runs, so training-side
    /// eval and deploy-side inference cannot drift apart. The integer
    /// dots are exact; outputs can differ from
    /// [`Layer::forward`](super::Layer::forward) only in the last ulp
    /// because α scales the whole dot instead of each term. Inputs (and
    /// the padding fill) are read by sign, so callers must feed ±1
    /// activations, and a padded layer must use a ±1 pad value (BNN
    /// deployments use −1 via [`Conv2d::with_pad_value`]) — the
    /// constructor's 0.0 fill would contribute nothing to the float path
    /// but pack as +1 here.
    ///
    /// # Panics
    /// Panics unless the layer has binary weights, `input` is
    /// `[N, C, H, W]`, and any active padding fills with ±1.
    pub fn forward_binary_packed(&self, input: &Tensor) -> Tensor {
        assert!(self.binary_weights, "packed path needs binary weights");
        assert!(
            self.pad == 0 || self.pad_value.abs() == 1.0,
            "packed path needs a ±1 padding fill, got {}",
            self.pad_value
        );
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "Conv2d expects [N, C, H, W]");
        assert_eq!(shape[1], self.in_channels, "channel mismatch");
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let oh = conv_out(h, self.kernel, self.stride, self.pad);
        let ow = conv_out(w, self.kernel, self.stride, self.pad);
        let hw = oh * ow;
        let pad_one = self.pad > 0 && self.pad_value >= 0.0;

        let wp = crate::packed::pack_sign_rows(&self.weight);
        let fan_in = self.in_channels * self.kernel * self.kernel;
        let alphas: Vec<f32> = (0..self.out_channels)
            .map(|o| binarize_weights(&self.weight.data()[o * fan_in..(o + 1) * fan_in]).1)
            .collect();
        let per = self.in_channels * h * w;
        let mut out = vec![0.0f32; n * self.out_channels * hw];
        for ni in 0..n {
            let plane = aqfp_sc::BitPlane::from_signs(&input.data()[ni * per..(ni + 1) * per]);
            let fields = aqfp_sc::bitplane::packed_im2col(
                &plane,
                self.in_channels,
                h,
                w,
                self.kernel,
                self.stride,
                self.pad,
                pad_one,
            );
            let dots = crate::packed::sign_gemm(&wp, &fields); // [O × oh·ow]
            for o in 0..self.out_channels {
                let dst = &mut out[(ni * self.out_channels + o) * hw..][..hw];
                for (d, &dot) in dst.iter_mut().zip(&dots[o * hw..(o + 1) * hw]) {
                    *d = alphas[o] * dot as f32;
                }
            }
        }
        Tensor::from_vec(&[n, self.out_channels, oh, ow], out)
    }

    /// The effective forward weights (`α·sign(W)` if binary, `W` otherwise)
    /// and the per-channel α vector. This is exactly what gets mapped onto
    /// crossbars at deployment.
    pub fn effective_weight(&self) -> (Tensor, Vec<f32>) {
        if !self.binary_weights {
            return (self.weight.clone(), vec![1.0; self.out_channels]);
        }
        let fan_in = self.in_channels * self.kernel * self.kernel;
        let mut data = Vec::with_capacity(self.weight.numel());
        let mut alphas = Vec::with_capacity(self.out_channels);
        for o in 0..self.out_channels {
            let row = &self.weight.data()[o * fan_in..(o + 1) * fan_in];
            let (signs, alpha) = binarize_weights(row);
            alphas.push(alpha);
            data.extend(signs.into_iter().map(|s| s * alpha));
        }
        (Tensor::from_vec(&[self.out_channels, fan_in], data), alphas)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, mode: Mode, _rng: &mut NnRng) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "Conv2d expects [N, C, H, W]");
        assert_eq!(shape[1], self.in_channels, "channel mismatch");
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let oh = conv_out(h, self.kernel, self.stride, self.pad);
        let ow = conv_out(w, self.kernel, self.stride, self.pad);

        let cols = im2col_filled(input, self.kernel, self.stride, self.pad, self.pad_value);
        let (weff, alphas) = self.effective_weight();
        let out2d = weff.matmul(&cols); // [O, N·oh·ow]

        // Rearrange [O, N·oh·ow] → [N, O, oh, ow].
        let mut out = vec![0.0f32; n * self.out_channels * oh * ow];
        let hw = oh * ow;
        for o in 0..self.out_channels {
            for ni in 0..n {
                for p in 0..hw {
                    out[(ni * self.out_channels + o) * hw + p] = out2d.at2(o, ni * hw + p);
                }
            }
        }

        if mode == Mode::Train {
            self.cache = Some(Cache {
                cols,
                input_shape: [n, self.in_channels, h, w],
                alphas,
            });
        }
        Tensor::from_vec(&[n, self.out_channels, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("Conv2d::backward without forward");
        let [n, c, h, w] = cache.input_shape;
        let shape = grad_out.shape();
        assert_eq!(shape.len(), 4);
        let (oh, ow) = (shape[2], shape[3]);
        let hw = oh * ow;

        // [N, O, oh, ow] → [O, N·oh·ow]
        let mut g2d = vec![0.0f32; self.out_channels * n * hw];
        for ni in 0..n {
            for o in 0..self.out_channels {
                for p in 0..hw {
                    g2d[o * (n * hw) + ni * hw + p] =
                        grad_out.data()[(ni * self.out_channels + o) * hw + p];
                }
            }
        }
        let g2d = Tensor::from_vec(&[self.out_channels, n * hw], g2d);

        // Parameter gradient: ∂L/∂Weff = g2d · colsᵀ; straight-through to
        // the latent weights (Eq. 9).
        let dweff = g2d.matmul(&cache.cols.transpose2());
        self.weight_grad.axpy(1.0, &dweff);

        // Input gradient through the *effective* weights: the hardware
        // multiplies by α·sign(W), so the data path uses it too.
        let (weff, _) = if self.binary_weights {
            // Rebuild with the α values cached at forward time (the latent
            // weights have not changed between forward and backward).
            let fan_in = c * self.kernel * self.kernel;
            let mut data = Vec::with_capacity(self.weight.numel());
            for o in 0..self.out_channels {
                let row = &self.weight.data()[o * fan_in..(o + 1) * fan_in];
                for &v in row {
                    let s = if v >= 0.0 { 1.0 } else { -1.0 };
                    data.push(s * cache.alphas[o]);
                }
            }
            (Tensor::from_vec(&[self.out_channels, fan_in], data), ())
        } else {
            (self.weight.clone(), ())
        };
        let dcols = weff.transpose2().matmul(&g2d);
        col2im(&dcols, n, c, h, w, self.kernel, self.stride, self.pad)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_>)) {
        f(ParamRef {
            name: "weight",
            value: &mut self.weight,
            grad: &mut self.weight_grad,
            decay: true,
        });
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn name(&self) -> &'static str {
        if self.binary_weights {
            "BinConv2d"
        } else {
            "Conv2d"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SeedableRng;

    fn rng() -> NnRng {
        NnRng::seed_from_u64(42)
    }

    #[test]
    #[should_panic(expected = "±1 padding fill")]
    fn packed_binary_forward_rejects_zero_pad_fill() {
        // The constructor's default 0.0 fill contributes nothing to the
        // float path but would pack as +1; the packed path must refuse.
        let mut r = rng();
        let conv = Conv2d::new(1, 1, 3, 1, 1, true, &mut r);
        conv.forward_binary_packed(&Tensor::from_vec(&[1, 1, 2, 2], vec![1.0; 4]));
    }

    #[test]
    fn packed_binary_forward_matches_float_forward() {
        // 3×3 binary conv with −1 padding on a ±1 input: the packed
        // im2col → XNOR-GEMM path must agree with the float path to
        // rounding error, and its sign pattern must match exactly.
        let mut r = rng();
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut r).with_pad_value(-1.0);
        let input = Tensor::from_vec(
            &[2, 2, 4, 4],
            (0..2 * 2 * 16)
                .map(|i| if (i * 11) % 4 < 2 { 1.0 } else { -1.0 })
                .collect(),
        );
        let reference = conv.forward(&input, Mode::Eval, &mut r);
        let packed = conv.forward_binary_packed(&input);
        assert_eq!(packed.shape(), reference.shape());
        for (a, b) in packed.data().iter().zip(reference.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            assert_eq!(*a >= 0.0, *b >= 0.0, "sign mismatch: {a} vs {b}");
        }
    }

    #[test]
    fn identity_1x1_convolution() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, false, &mut r);
        conv.weight_mut().data_mut()[0] = 2.0;
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 2., 3., 4.]);
        let out = conv.forward(&input, Mode::Eval, &mut r);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn known_3x3_sum_kernel() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, false, &mut r);
        for w in conv.weight_mut().data_mut() {
            *w = 1.0;
        }
        let input = Tensor::from_vec(&[1, 1, 3, 3], vec![1.; 9]);
        let out = conv.forward(&input, Mode::Eval, &mut r);
        // Centre pixel sees all 9 ones; corners see 4.
        assert_eq!(out.at4(0, 0, 1, 1), 9.0);
        assert_eq!(out.at4(0, 0, 0, 0), 4.0);
    }

    #[test]
    fn output_geometry() {
        let mut r = rng();
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, false, &mut r);
        let input = Tensor::zeros(&[2, 3, 16, 16]);
        let out = conv.forward(&input, Mode::Eval, &mut r);
        assert_eq!(out.shape(), &[2, 8, 8, 8]);
    }

    #[test]
    fn binary_weights_are_alpha_times_sign() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, true, &mut r);
        conv.weight_mut()
            .data_mut()
            .copy_from_slice(&[0.5, -1.5, 1.0, -1.0]);
        let (weff, alphas) = conv.effective_weight();
        assert!((alphas[0] - 1.0).abs() < 1e-6);
        assert_eq!(weff.data(), &[1.0, -1.0, 1.0, -1.0]);
    }

    /// Central-difference gradient check for the full-precision path.
    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut r = rng();
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, false, &mut r);
        let input = Tensor::from_vec(
            &[1, 2, 4, 4],
            (0..32).map(|i| ((i * 7 % 13) as f32 - 6.0) / 6.0).collect(),
        );
        // Loss = sum(out²)/2 so dL/dout = out.
        let out = conv.forward(&input, Mode::Train, &mut r);
        let _ = conv.backward(&out);
        let analytic = conv.weight_grad.clone();

        let loss = |conv: &mut Conv2d, r: &mut NnRng, input: &Tensor| -> f32 {
            let o = conv.forward(input, Mode::Eval, r);
            0.5 * o.data().iter().map(|x| x * x).sum::<f32>()
        };
        let h = 1e-3f32;
        for idx in [0usize, 5, 17, 33] {
            let orig = conv.weight.data()[idx];
            conv.weight.data_mut()[idx] = orig + h;
            let lp = loss(&mut conv, &mut r, &input);
            conv.weight.data_mut()[idx] = orig - h;
            let lm = loss(&mut conv, &mut r, &input);
            conv.weight.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * h);
            let an = analytic.data()[idx];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "idx {idx}: fd {fd} vs analytic {an}"
            );
        }
    }

    /// The input gradient must also match finite differences.
    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, false, &mut r);
        let mut input = Tensor::from_vec(
            &[1, 1, 4, 4],
            (0..16).map(|i| ((i * 5 % 11) as f32 - 5.0) / 5.0).collect(),
        );
        let out = conv.forward(&input, Mode::Train, &mut r);
        let din = conv.backward(&out);

        let loss = |conv: &mut Conv2d, r: &mut NnRng, input: &Tensor| -> f32 {
            let o = conv.forward(input, Mode::Eval, r);
            0.5 * o.data().iter().map(|x| x * x).sum::<f32>()
        };
        let h = 1e-3f32;
        for idx in [0usize, 7, 15] {
            let orig = input.data()[idx];
            input.data_mut()[idx] = orig + h;
            let lp = loss(&mut conv, &mut r, &input);
            input.data_mut()[idx] = orig - h;
            let lm = loss(&mut conv, &mut r, &input);
            input.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * h);
            let an = din.data()[idx];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "idx {idx}: fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_without_forward_panics() {
        let mut r = rng();
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, false, &mut r);
        conv.backward(&Tensor::zeros(&[1, 1, 1, 1]));
    }
}
