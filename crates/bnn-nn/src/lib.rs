//! A from-scratch neural-network substrate with binarization-aware training.
//!
//! The SupeRBNN paper trains binary neural networks (VGG-Small, ResNet-18,
//! an MNIST MLP) with a *randomized-aware* forward/backward pass that bakes
//! the AQFP gray-zone law into the activation binarizer. No Rust ML
//! framework in the allowed dependency set provides that, so this crate
//! implements the necessary substrate directly:
//!
//! * [`tensor`] — a dense row-major `f32` tensor with the operations the
//!   layers need (matmul, im2col convolution, reductions);
//! * [`layers`] — `Conv2d` / `Linear` (optionally weight-binarized with
//!   XNOR-Net α scaling), `BatchNorm`, `HardTanh`, `MaxPool2d`, `Flatten`,
//!   and the [`BinActivation`](layers::BinActivation) whose forward pass is
//!   the paper's Eq. 7 and whose backward pass is Eq. 10;
//! * [`binarize`] — deterministic sign/STE and randomized-erf binarizers;
//! * [`recu`] — the weight rectified clamp (Eq. 17, following ReCU);
//! * [`optim`] — SGD with momentum plus the cosine-annealing-with-warmup
//!   schedule of Section 6.1;
//! * [`loss`] — softmax cross-entropy;
//! * [`model`] — a sequential container and train/eval helpers.
//!
//! The crate is deliberately framework-shaped (layers cache what their
//! backward needs; an explicit trait instead of autograd) — the network
//! sizes of this reproduction do not justify a tape machine, and the manual
//! backward passes are each individually testable against finite
//! differences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binarize;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod packed;
pub mod recu;
pub mod tensor;

pub use binarize::Binarizer;
pub use model::Sequential;
pub use tensor::Tensor;

/// RNG used across training; seeded for reproducibility.
pub type NnRng = rand::rngs::StdRng;
pub use rand::SeedableRng;
