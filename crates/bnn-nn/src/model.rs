//! The sequential model container.

use crate::layers::{Layer, Mode, ParamRef};
use crate::recu::{rectified_clamp, TauSchedule};
use crate::tensor::Tensor;
use crate::NnRng;

/// A stack of layers applied in order.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// An empty model.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers (for deployment-time introspection).
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable access to one layer, downcast by the caller.
    pub fn layer_mut(&mut self, idx: usize) -> &mut dyn Layer {
        self.layers[idx].as_mut()
    }

    /// Runs all layers forward.
    pub fn forward(&mut self, input: &Tensor, mode: Mode, rng: &mut NnRng) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, mode, rng);
        }
        x
    }

    /// Runs all layers backward from the loss gradient.
    pub fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut g = grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Visits every parameter of every layer in a stable order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(ParamRef<'_>)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total parameter count.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.numel());
        n
    }

    /// Applies the ReCU rectified clamp (paper Eq. 17) to every
    /// weight-decayed parameter tensor (i.e. conv/linear weights, not BN
    /// affines or biases) with τ from `schedule` at `step`.
    pub fn apply_recu(&mut self, schedule: &TauSchedule, step: usize) {
        let tau = schedule.tau_at(step);
        self.visit_params(&mut |p| {
            if p.decay && p.name == "weight" {
                rectified_clamp(p.value.data_mut(), tau);
            }
        });
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BinActivation, HardTanh, Linear};
    use crate::loss::softmax_cross_entropy;
    use crate::optim::Sgd;
    use crate::{Binarizer, SeedableRng};

    #[test]
    fn forward_composes_layers() {
        let mut r = NnRng::seed_from_u64(0);
        let mut model = Sequential::new();
        let mut lin = Linear::new(2, 2, false, &mut r);
        lin.weight_mut()
            .data_mut()
            .copy_from_slice(&[2., 0., 0., 2.]);
        model.push(lin);
        model.push(HardTanh::new());
        let x = Tensor::from_vec(&[1, 2], vec![0.4, -3.0]);
        let y = model.forward(&x, Mode::Eval, &mut r);
        // 2·0.4 = 0.8 (unclamped); 2·(−3) = −6 → clamped to −1.
        assert_eq!(y.data(), &[0.8, -1.0]);
    }

    #[test]
    fn trains_a_tiny_classifier() {
        // Two linearly separable clusters; a 2-layer net must fit them.
        let mut r = NnRng::seed_from_u64(9);
        let mut model = Sequential::new();
        model.push(Linear::new(2, 8, false, &mut r));
        model.push(HardTanh::new());
        model.push(Linear::new(8, 2, false, &mut r));
        let mut opt = Sgd::new(0.1, 0.9, 0.0);

        let x = Tensor::from_vec(&[4, 2], vec![1.0, 1.0, 0.8, 1.2, -1.0, -1.0, -1.2, -0.8]);
        let labels = [0usize, 0, 1, 1];
        let mut final_loss = f32::MAX;
        for _ in 0..200 {
            let logits = model.forward(&x, Mode::Train, &mut r);
            let (loss, grad) = softmax_cross_entropy(&logits, &labels);
            final_loss = loss;
            model.backward(&grad);
            opt.step(&mut model);
        }
        assert!(final_loss < 0.05, "loss {final_loss}");
        let logits = model.forward(&x, Mode::Eval, &mut r);
        assert_eq!(logits.argmax_rows(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn trains_through_binarization() {
        // Binary activations with deterministic STE still learn a separable
        // problem — the core claim of BNN training.
        let mut r = NnRng::seed_from_u64(10);
        let mut model = Sequential::new();
        model.push(Linear::new(2, 16, false, &mut r));
        model.push(BinActivation::new(Binarizer::Deterministic));
        model.push(Linear::new(16, 2, true, &mut r));
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let x = Tensor::from_vec(&[4, 2], vec![1.0, 1.0, 0.9, 1.1, -1.0, -1.0, -1.1, -0.9]);
        let labels = [0usize, 0, 1, 1];
        for _ in 0..300 {
            let logits = model.forward(&x, Mode::Train, &mut r);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            model.backward(&grad);
            opt.step(&mut model);
        }
        let logits = model.forward(&x, Mode::Eval, &mut r);
        assert_eq!(logits.argmax_rows(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn recu_clamps_only_weights() {
        let mut r = NnRng::seed_from_u64(11);
        let mut model = Sequential::new();
        let mut lin = Linear::new(4, 2, true, &mut r);
        // Plant an extreme outlier.
        lin.weight_mut().data_mut()[0] = 100.0;
        model.push(lin);
        let schedule = TauSchedule::paper_default(10);
        model.apply_recu(&schedule, 0);
        let mut max_w = 0.0f32;
        model.visit_params(&mut |p| {
            if p.name == "weight" {
                max_w = max_w.max(p.value.max_abs());
            }
        });
        assert!(max_w < 100.0, "outlier should be clamped, max {max_w}");
    }

    #[test]
    fn param_count_is_stable() {
        let mut r = NnRng::seed_from_u64(12);
        let mut model = Sequential::new();
        model.push(Linear::new(3, 4, false, &mut r)); // 12 + 4
        model.push(Linear::new(4, 2, false, &mut r)); // 8 + 2
        assert_eq!(model.param_count(), 26);
    }
}
