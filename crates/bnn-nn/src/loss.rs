//! Softmax cross-entropy loss.

use crate::tensor::Tensor;

/// Computes mean softmax cross-entropy over a batch of logits and the
/// gradient with respect to the logits.
///
/// `logits` is `[N, K]`; `labels[i] ∈ 0..K`. Returns `(loss, grad)` where
/// `grad = (softmax − onehot) / N`.
///
/// # Panics
/// Panics on shape/label mismatches.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    assert_eq!(logits.shape().len(), 2, "logits must be [N, K]");
    let (n, k) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "label count mismatch");

    let mut grad = vec![0.0f32; n * k];
    let mut loss = 0.0f32;
    for i in 0..n {
        let label = labels[i];
        assert!(label < k, "label {label} out of range for {k} classes");
        let row = &logits.data()[i * k..(i + 1) * k];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let denom: f32 = exps.iter().sum();
        let log_denom = denom.ln();
        loss += -(row[label] - max - log_denom);
        for j in 0..k {
            let softmax = exps[j] / denom;
            grad[i * k + j] = (softmax - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    (loss / n as f32, Tensor::from_vec(&[n, k], grad))
}

/// Top-1 accuracy of logits against labels.
///
/// # Panics
/// Panics on batch-size mismatch.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f64 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), labels.len(), "batch size mismatch");
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-3);
        let (wrong_loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(wrong_loss > 5.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut logits = Tensor::from_vec(&[2, 3], vec![0.5, -1.0, 2.0, 0.0, 1.0, -0.5]);
        let labels = [2usize, 1];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let h = 1e-3f32;
        for idx in 0..6 {
            let orig = logits.data()[idx];
            logits.data_mut()[idx] = orig + h;
            let (lp, _) = softmax_cross_entropy(&logits, &labels);
            logits.data_mut()[idx] = orig - h;
            let (lm, _) = softmax_cross_entropy(&logits, &labels);
            logits.data_mut()[idx] = orig;
            let fd = (lp - lm) / (2.0 * h);
            assert!(
                (fd - grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: {fd} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let row_sum: f32 = grad.data().iter().sum();
        assert!(row_sum.abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec(&[3, 2], vec![1., 0., 0., 1., 1., 0.]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-12);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn numerically_stable_for_large_logits() {
        let logits = Tensor::from_vec(&[1, 2], vec![1000.0, -1000.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        softmax_cross_entropy(&Tensor::zeros(&[1, 3]), &[3]);
    }
}
