//! Binarization: deterministic sign/STE and the randomized AQFP-aware law.
//!
//! Paper Eqs. 6, 7, 9, 10. The deterministic binarizer is the classical
//! `sign` with a straight-through estimator clipped to `|x| ≤ 1` (the
//! HardTanh STE). The randomized binarizer samples `±1` with the erf
//! probability of the value-domain gray-zone law; its backward pass
//! differentiates the *expected* output `E(ab) = erf(√π(ar − Vth)/ΔVin)`.

use aqfp_device::GrayZone;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An activation binarizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Binarizer {
    /// `sign(x)` forward; clipped straight-through estimator backward.
    Deterministic,
    /// AQFP randomized binarization: forward samples Eq. 7, backward uses
    /// Eq. 10. The law lives in the value domain (`ΔVin(Cs)`, `Vth`).
    Randomized(GrayZone),
}

impl Binarizer {
    /// The randomized binarizer for a crossbar of `cs` rows with gray-zone
    /// `grayzone_ua` (µA) under attenuation `I1(cs) = a·cs^−b` — the glue
    /// between hardware configuration and training (Eqs. 3–4).
    pub fn from_hardware(grayzone_ua: f64, i1_ua: f64, vth: f64) -> Self {
        Binarizer::Randomized(GrayZone::new(vth, grayzone_ua / i1_ua))
    }

    /// Deterministic forward value (also the inference-time mean path):
    /// `sign(x)` for [`Binarizer::Deterministic`], the expected value's sign
    /// for [`Binarizer::Randomized`] (both map `x = Vth` to `+1`).
    pub fn forward_deterministic(&self, x: f32) -> f32 {
        match self {
            Binarizer::Deterministic => {
                if x >= 0.0 {
                    1.0
                } else {
                    -1.0
                }
            }
            Binarizer::Randomized(law) => {
                if (x as f64) >= law.threshold {
                    1.0
                } else {
                    -1.0
                }
            }
        }
    }

    /// Stochastic forward sample (training and hardware-faithful eval).
    pub fn forward_sample<R: Rng + ?Sized>(&self, x: f32, rng: &mut R) -> f32 {
        match self {
            Binarizer::Deterministic => self.forward_deterministic(x),
            Binarizer::Randomized(law) => {
                if law.sample(x as f64, rng) {
                    1.0
                } else {
                    -1.0
                }
            }
        }
    }

    /// Probability of binarizing to `+1`.
    pub fn probability_one(&self, x: f32) -> f64 {
        match self {
            Binarizer::Deterministic => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Binarizer::Randomized(law) => law.probability_one(x as f64),
        }
    }

    /// Gradient of the surrogate output with respect to the input.
    ///
    /// Deterministic: the HardTanh-clipped STE, `1` for `|x| ≤ 1` else `0`.
    ///
    /// Randomized: the envelope of (a) the *shape* of `dE(ab)/dx` from
    /// Eq. 10 — a Gaussian bump centred on the threshold, normalized to
    /// unit peak — and (b) the clipped STE. Two normalizations against the
    /// raw Eq. 10 derivative are deliberate:
    ///
    /// * the raw erf derivative peaks at `2/ΔVin` (≈ 10 at narrow
    ///   gray-zones), which compounds across a VGG-depth network and
    ///   destabilizes training, so the bump is scaled to unit peak (the
    ///   STE itself is a unit-scale surrogate);
    /// * a *pure* bump starves every activation outside the responsive
    ///   band of gradient, and the starved weights drift under momentum
    ///   and weight decay — the noise-aware-training literature (PCM,
    ///   ReRAM) pairs a stochastic forward with full STE support for this
    ///   reason. Taking the maximum keeps gradients alive across the STE
    ///   range while preserving the erf law's extra reach when the
    ///   gray-zone is wider than the clip.
    pub fn backward(&self, x: f32) -> f32 {
        match self {
            Binarizer::Deterministic => {
                if x.abs() <= 1.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Binarizer::Randomized(law) => {
                let u = crate::binarize::erf_arg(law, x as f64);
                let bump = (-u * u).exp() as f32;
                let ste = if x.abs() <= 1.0 { 1.0 } else { 0.0 };
                bump.max(ste)
            }
        }
    }
}

/// The normalized erf argument `u = √π·(x − Vth)/ΔVin` of a gray-zone law.
pub(crate) fn erf_arg(law: &GrayZone, x: f64) -> f64 {
    debug_assert!(law.width > 0.0, "randomized law needs a positive width");
    aqfp_device::grayzone::SQRT_PI * (x - law.threshold) / law.width
}

/// Binarizes a weight slice with the XNOR-Net scaling factor:
/// returns `(signs, α)` where `α = mean(|w|)` and `signs[i] = ±1`.
///
/// The caller applies `α` once per output channel (the paper folds the
/// weight and activation scaling factors into a single per-channel α).
pub fn binarize_weights(weights: &[f32]) -> (Vec<f32>, f32) {
    let alpha = if weights.is_empty() {
        0.0
    } else {
        weights.iter().map(|w| w.abs()).sum::<f32>() / weights.len() as f32
    };
    let signs = weights
        .iter()
        .map(|&w| if w >= 0.0 { 1.0 } else { -1.0 })
        .collect();
    (signs, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_sign_convention() {
        let b = Binarizer::Deterministic;
        assert_eq!(b.forward_deterministic(0.0), 1.0); // Eq. 6: x ≥ 0 → +1
        assert_eq!(b.forward_deterministic(0.5), 1.0);
        assert_eq!(b.forward_deterministic(-0.5), -1.0);
    }

    #[test]
    fn deterministic_ste_clips() {
        let b = Binarizer::Deterministic;
        assert_eq!(b.backward(0.5), 1.0);
        assert_eq!(b.backward(-0.99), 1.0);
        assert_eq!(b.backward(1.5), 0.0);
        assert_eq!(b.backward(-2.0), 0.0);
    }

    #[test]
    fn randomized_sampling_matches_probability() {
        let law = GrayZone::new(0.0, 0.5);
        let b = Binarizer::Randomized(law);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = 0.1f32;
        let n = 20_000;
        let plus = (0..n)
            .filter(|_| b.forward_sample(x, &mut rng) > 0.0)
            .count() as f64
            / n as f64;
        assert!((plus - b.probability_one(x)).abs() < 0.015);
    }

    #[test]
    fn randomized_gradient_is_ste_bump_envelope() {
        let law = GrayZone::new(0.2, 0.7);
        let b = Binarizer::Randomized(law);
        // Inside the STE clip the envelope is exactly 1.
        for x in [-0.9f32, 0.0, 0.2, 0.9] {
            assert_eq!(b.backward(x), 1.0, "at {x}");
        }
        // Outside the clip the normalized erf bump takes over, decaying
        // smoothly to zero where the device saturates.
        let just_outside = b.backward(1.2);
        assert!(just_outside > 0.0 && just_outside < 1.0);
        assert!(b.backward(1.2) > b.backward(1.6));
        assert!(b.backward(5.0).abs() < 1e-6);
        // A wide gray-zone extends gradient support beyond the clip.
        let wide = Binarizer::Randomized(GrayZone::new(0.0, 4.0));
        assert!(wide.backward(1.5) > 0.5);
    }

    #[test]
    fn from_hardware_divides_by_unit_current() {
        // ΔIin = 2.4 µA on a column whose unit current is 12 µA → ΔVin 0.2.
        let b = Binarizer::from_hardware(2.4, 12.0, 0.0);
        match b {
            Binarizer::Randomized(law) => {
                assert!((law.width - 0.2).abs() < 1e-12);
            }
            _ => panic!("expected randomized"),
        }
    }

    #[test]
    fn weight_binarization_alpha_is_l1_mean() {
        let (signs, alpha) = binarize_weights(&[0.5, -1.5, 1.0]);
        assert_eq!(signs, vec![1.0, -1.0, 1.0]);
        assert!((alpha - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_weights_are_harmless() {
        let (signs, alpha) = binarize_weights(&[]);
        assert!(signs.is_empty());
        assert_eq!(alpha, 0.0);
    }
}
