//! Packed XNOR–popcount kernels for binarized eval-time inference.
//!
//! A binarized layer's eval forward is `α_o · dot(sign(W_o), a) + b_o`
//! with `a ∈ {±1}ⁿ`. This module evaluates the dot as
//! `2·popcount(XNOR) − n` over [`aqfp_sc::PackedMatrix`] bitplanes (the
//! workspace-wide packing also used by the deploy engine), which is the
//! im2col → packed-GEMM fast path behind
//! [`Linear::forward_binary_packed`](crate::layers::Linear::forward_binary_packed)
//! and
//! [`Conv2d::forward_binary_packed`](crate::layers::Conv2d::forward_binary_packed).
//!
//! The integer dots are *exact*; the only difference from the float
//! forward is that `α · Σ sᵢaᵢ` rounds once where `Σ α sᵢaᵢ` rounds per
//! addition, so outputs can differ in the last ulp (never in sign, given
//! any decision margin).

use crate::tensor::Tensor;
use aqfp_sc::PackedMatrix;

/// Packs the sign pattern of a row-major `[rows × width]` matrix
/// (`v ≥ 0` packs as `+1`, the Eq. 6 convention).
///
/// # Panics
/// Panics if `t` is not a 2-D tensor of that shape.
pub fn pack_sign_rows(t: &Tensor) -> PackedMatrix {
    assert_eq!(t.shape().len(), 2, "expected a [rows, width] matrix");
    PackedMatrix::from_signs(t.data(), t.shape()[0], t.shape()[1])
}

/// Packs the sign pattern of each *column* of a `[width × cols]` matrix
/// (e.g. an [`im2col`](crate::layers::im2col) unfold, whose columns are
/// receptive fields) into one plane per column: row `j` of the result is
/// column `j` of the input.
///
/// Vectorized: the input is walked in 64-row blocks, accumulating one
/// whole `u64` word per output plane in registers and storing it with a
/// single write, instead of a read-modify-write `set` per bit. Both the
/// input scan and the per-block accumulator stay sequential in memory.
///
/// # Panics
/// Panics if `t` is not 2-D.
pub fn pack_sign_columns(t: &Tensor) -> PackedMatrix {
    assert_eq!(t.shape().len(), 2, "expected a [width, cols] matrix");
    let (width, cols) = (t.shape()[0], t.shape()[1]);
    let data = t.data();
    let mut m = PackedMatrix::zeros(cols, width);
    let mut cur = vec![0u64; cols];
    let mut word = 0usize;
    let mut i = 0usize;
    while i < width {
        let block = (width - i).min(64);
        cur.fill(0);
        for bi in 0..block {
            let bit = 1u64 << bi;
            let row = &data[(i + bi) * cols..(i + bi + 1) * cols];
            for (j, &v) in row.iter().enumerate() {
                if v >= 0.0 {
                    cur[j] |= bit;
                }
            }
        }
        for (j, &w) in cur.iter().enumerate() {
            m.row_words_mut(j)[word] = w;
        }
        i += block;
        word += 1;
    }
    m
}

/// Packed sign-GEMM: the exact signed ±1 dot of every weight row with
/// every activation row, `[weights.rows() × acts.rows()]` row-major.
///
/// # Panics
/// Panics on width mismatch.
pub fn sign_gemm(weights: &PackedMatrix, acts: &PackedMatrix) -> Vec<i64> {
    weights.xnor_gemm(acts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signs(n: usize, salt: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                if (i * 13 + salt * 7 + 1).is_multiple_of(3) {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect()
    }

    fn scalar_dot(a: &[f32], b: &[f32]) -> i64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let sx = if x >= 0.0 { 1i64 } else { -1 };
                let sy = if y >= 0.0 { 1i64 } else { -1 };
                sx * sy
            })
            .sum()
    }

    #[test]
    fn gemm_matches_scalar_dots_on_ragged_widths() {
        for width in [1usize, 7, 63, 64, 65, 130] {
            let w = Tensor::from_vec(&[3, width], signs(3 * width, 1));
            let a = Tensor::from_vec(&[2, width], signs(2 * width, 2));
            let dots = sign_gemm(&pack_sign_rows(&w), &pack_sign_rows(&a));
            for o in 0..3 {
                for n in 0..2 {
                    let expect = scalar_dot(
                        &w.data()[o * width..(o + 1) * width],
                        &a.data()[n * width..(n + 1) * width],
                    );
                    assert_eq!(dots[o * 2 + n], expect, "width {width} o {o} n {n}");
                }
            }
        }
    }

    #[test]
    fn column_packing_transposes() {
        // [width=3, cols=2] matrix: column j becomes row j.
        let t = Tensor::from_vec(&[3, 2], vec![1.0, -1.0, -1.0, 1.0, 1.0, -1.0]);
        let m = pack_sign_columns(&t);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.width(), 3);
        assert_eq!(
            (0..3).map(|i| m.get(0, i)).collect::<Vec<_>>(),
            vec![true, false, true]
        );
        assert_eq!(
            (0..3).map(|i| m.get(1, i)).collect::<Vec<_>>(),
            vec![false, true, false]
        );
    }
}
